package bench

import (
	"pythia/internal/flight"
	"pythia/internal/netsim"
	"pythia/internal/sim"
	"pythia/internal/workload"
)

// ScaleFatTreeConfig sizes one scale-benchmark run: a sort job spread over
// a k-ary fat-tree, scheduled by Pythia. The point is not a paper figure
// but simulator throughput — how fast the hot paths (telemetry polls,
// max-min recomputation, bin packing) handle fabrics far beyond the
// 16-server testbed.
type ScaleFatTreeConfig struct {
	// K is the fat-tree arity (even, ≥ 4). Hosts = k³/4 with the default
	// k/2 hosts per edge switch: k=4 → 16, k=6 → 54, k=8 → 128.
	K int
	// SortBytes is the job input size; 0 defaults to hosts × 128 MB
	// (one sort block per two hosts — enough concurrent flows that every
	// poll and recompute crosses the whole fabric). The k=16/k=24 rows set
	// it explicitly: the default grows cubically with k and would put half
	// a million flows through a single trial.
	SortBytes float64
	// Reduces overrides the reducer count; 0 defaults to the host count
	// (one reducer per server, the canonical full-fabric shuffle).
	Reduces int
	// DisableIndexes runs the scan-baseline reference implementations
	// instead of the per-link indexes. It takes precedence over Alloc.
	DisableIndexes bool
	// Alloc selects the netsim allocator (incremental coalesced by
	// default; AllocIndexed measures the PR 1 eager path).
	Alloc netsim.AllocMode
	// Sched selects the event-kernel scheduler (calendar queue by default;
	// SchedHeap measures the original binary heap on the same workload).
	Sched sim.SchedulerMode
	// AllocWorkers shards allocation passes across connected components
	// when > 1 (bit-identical at any width).
	AllocWorkers int
	Seed         uint64
}

// ScaleFatTreeResult reports the run.
type ScaleFatTreeResult struct {
	Hosts       int
	JobSec      float64
	FlowHistory []FlowRecord
	// Faults are the prediction-plane robustness counters, carried into the
	// BENCH_scale artifact so the trajectory stays comparable; the scale run
	// is healthy, so they must all read zero.
	Faults FaultCounters
	// Quality carries the flight recorder's prediction scores (lead time,
	// late fraction, byte error) into the BENCH_scale artifact.
	Quality *flight.Quality
}

// FatTreeHosts returns the host count of the k-ary fat-tree used by
// RunScaleFatTree.
func FatTreeHosts(k int) int { return k * (k / 2) * (k / 2) }

// RunScaleFatTree executes one scale trial and returns its outcome,
// including the full flow history so callers can assert determinism
// across the indexed and scan-baseline implementations.
func RunScaleFatTree(cfg ScaleFatTreeConfig) ScaleFatTreeResult {
	hosts := FatTreeHosts(cfg.K)
	bytes := cfg.SortBytes
	if bytes == 0 {
		bytes = float64(hosts) * 128 * workload.MB
	}
	reduces := cfg.Reduces
	if reduces == 0 {
		reduces = hosts
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 7
	}
	res := RunTrial(TrialConfig{
		Spec:               workload.Sort(bytes, reduces, seed),
		Scheduler:          Pythia,
		FatTreeK:           cfg.K,
		Seed:               seed,
		DisableIndexes:     cfg.DisableIndexes,
		Alloc:              cfg.Alloc,
		Sched:              cfg.Sched,
		AllocWorkers:       cfg.AllocWorkers,
		CollectFlowHistory: true,
		CollectFlight:      true,
	})
	return ScaleFatTreeResult{Hosts: hosts, JobSec: res.JobSec, FlowHistory: res.FlowHistory,
		Faults: res.Faults, Quality: res.Quality}
}
