package bench

import "testing"

// TestRecoveryBenchSmoke runs the crash-recovery benchmark at a reduced
// shape and asserts its hard guarantees: every snapshot cadence recovers a
// placement digest bit-identical to the in-process oracle with zero leaked
// bookings, snapshots bound the replayed journal tail, and the journal
// actually held the trace.
func TestRecoveryBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery bench smoke is not short")
	}
	res, err := RunRecoveryBench(RecoveryConfig{
		Jobs:           6,
		ChunkOps:       32,
		SnapshotEverys: []int{-1, 4},
		Shards:         2,
	})
	if err != nil {
		t.Fatalf("RunRecoveryBench: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.DigestMatchesOracle {
			t.Errorf("snapshot_every=%d: digest %s != oracle %s",
				row.SnapshotEvery, row.Digest, res.OracleDigest)
		}
		if row.LeakedBookings != 0 {
			t.Errorf("snapshot_every=%d: %d leaked bookings", row.SnapshotEvery, row.LeakedBookings)
		}
		if row.WALRecords != res.Requests {
			t.Errorf("snapshot_every=%d: %d journal records, want %d (one per request)",
				row.SnapshotEvery, row.WALRecords, res.Requests)
		}
	}
	noSnap, withSnap := res.Rows[0], res.Rows[1]
	if noSnap.ReplayedRecords != res.Requests {
		t.Errorf("snapshots disabled: replayed %d records, want the full journal (%d)",
			noSnap.ReplayedRecords, res.Requests)
	}
	if noSnap.Snapshots != 0 {
		t.Errorf("snapshots disabled: wrote %d snapshots", noSnap.Snapshots)
	}
	if withSnap.Snapshots == 0 {
		t.Errorf("snapshot_every=4: wrote no snapshots over %d batches", res.Requests)
	}
	if withSnap.ReplayedRecords >= noSnap.ReplayedRecords {
		t.Errorf("snapshots did not shorten replay: %d >= %d",
			withSnap.ReplayedRecords, noSnap.ReplayedRecords)
	}
	t.Logf("\n%s", res)
}
