package bench

import (
	"fmt"
	"strings"

	"pythia/internal/hadoop"
	"pythia/internal/workload"
)

// LowerBound is an omniscient-scheduler lower bound on job completion time
// for the two-rack testbed: no flow allocator — not even one with perfect
// future knowledge — can beat it. It is the maximum of two resource bounds:
//
//   - compute: total map work spread over all map slots, plus the cheapest
//     possible reduce tail;
//   - network: the expected inter-rack shuffle volume pushed through the
//     *entire* spare inter-rack capacity (perfect packing, zero waste).
//
// Reducer placement is unknown to the bound, so the inter-rack volume uses
// the expectation under uniform spread (a reducer is remote to a given
// mapper with probability (hosts/2)/hosts = 1/2 on two equal racks).
type LowerBound struct {
	ComputeSec float64
	NetworkSec float64
}

// Sec returns the binding bound.
func (b LowerBound) Sec() float64 {
	if b.ComputeSec > b.NetworkSec {
		return b.ComputeSec
	}
	return b.NetworkSec
}

// ComputeLowerBound evaluates the bound for a spec on the default testbed
// shape at the given oversubscription level.
func ComputeLowerBound(spec *hadoop.JobSpec, lvl Oversub) LowerBound {
	cfg := TrialConfig{Oversub: lvl}.defaults()
	hcfg := hadoop.Config{}.Defaults()

	// Compute bound: perfect packing of map work over every slot, then
	// the smallest possible reduce tail (the least-loaded reducer's
	// compute; some reducer must still run after the last byte arrives).
	totalMapSec := 0.0
	for _, d := range spec.MapDurations {
		totalMapSec += d
	}
	slots := float64(2*cfg.HostsPerRack) * float64(hcfg.MapSlots)
	minReduceTail := 0.0
	for i, bytes := range spec.ReducerBytes() {
		tail := spec.ReduceBaseSec + spec.ReduceSecPerMB*bytes/1e6
		if i == 0 || tail < minReduceTail {
			minReduceTail = tail
		}
	}
	compute := totalMapSec/slots + minReduceTail

	// Network bound: expected inter-rack wire volume through the whole
	// spare trunk capacity, both directions usable independently.
	spareTotal := float64(cfg.Trunks) * cfg.LinkBps
	if lvl.Ratio > 0 {
		spareTotal = float64(cfg.HostsPerRack) * cfg.LinkBps / float64(lvl.Ratio)
		if max := float64(cfg.Trunks) * cfg.LinkBps; spareTotal > max {
			spareTotal = max
		}
	}
	interRackBytes := 0.5 * spec.TotalShuffleBytes() * hcfg.WireOverheadFactor
	// Traffic splits across the two directions; with uniform placement
	// half flows each way, so each direction moves interRack/2 through
	// spareTotal of its own. The binding direction carries half.
	network := (interRackBytes / 2 * 8) / spareTotal

	return LowerBound{ComputeSec: compute, NetworkSec: network}
}

// GapRow is one optimality-gap measurement.
type GapRow struct {
	Oversub   string
	BoundSec  float64
	PythiaSec float64
	ECMPSec   float64
	// PythiaGap = PythiaSec/BoundSec - 1 (0 = optimal).
	PythiaGap float64
	ECMPGap   float64
}

// RunOptimalityGap (E11) measures how much of the omniscient bound Pythia
// and ECMP leave on the table across the oversubscription sweep, on the
// sort workload. The interesting shape: ECMP's gap explodes with contention
// while Pythia's stays bounded.
func RunOptimalityGap(scale Scale) []GapRow {
	var rows []GapRow
	for _, lvl := range StandardLevels() {
		spec := workload.Sort(scale.SortBytes, 10, 17)
		bound := ComputeLowerBound(spec, lvl).Sec()
		py := RunTrial(TrialConfig{Spec: spec, Scheduler: Pythia, Oversub: lvl, Seed: 17}).JobSec
		ec := RunTrial(TrialConfig{Spec: spec, Scheduler: ECMP, Oversub: lvl, Seed: 17}).JobSec
		rows = append(rows, GapRow{
			Oversub:   lvl.Label,
			BoundSec:  bound,
			PythiaSec: py,
			ECMPSec:   ec,
			PythiaGap: py/bound - 1,
			ECMPGap:   ec/bound - 1,
		})
	}
	return rows
}

// FormatGapTable renders the E11 sweep.
func FormatGapTable(title string, rows []GapRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-8s %10s %12s %10s %12s %10s\n",
		"oversub", "bound (s)", "Pythia (s)", "gap", "ECMP (s)", "gap")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %10.1f %12.1f %9.0f%% %12.1f %9.0f%%\n",
			r.Oversub, r.BoundSec, r.PythiaSec, r.PythiaGap*100, r.ECMPSec, r.ECMPGap*100)
	}
	return b.String()
}
