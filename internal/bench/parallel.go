package bench

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelism is the worker-pool width for fanning out independent trials.
// 0 (the default) means GOMAXPROCS; 1 runs everything serially on the
// calling goroutine.
var parallelism int

// SetParallelism sets the number of trials the harness runs concurrently.
// n <= 0 restores the default (GOMAXPROCS); n == 1 forces serial execution.
// Each trial is an independent deterministic simulation with its own engine,
// so fan-out changes wall-clock only: every Run* function assembles results
// in submission order and produces byte-identical output at any width.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism = n
}

// Parallelism reports the effective worker count.
func Parallelism() int {
	if parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallelism
}

// forEachIndex runs fn(0..n-1) across the harness worker pool and returns
// when all calls finish. Order of execution is unspecified; callers index
// into pre-sized result slices so assembly order never depends on it. A
// panic in any fn is re-raised on the calling goroutine once the pool has
// drained.
func forEachIndex(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		panicMu sync.Mutex
		panicV  any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicV == nil {
								panicV = r
							}
							panicMu.Unlock()
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicV != nil {
		panic(panicV)
	}
}

// RunTrials executes every config across the worker pool and returns the
// results in the same order as the configs. Seeds and specs must be fixed in
// the configs up front; the function adds no nondeterminism of its own.
func RunTrials(cfgs []TrialConfig) []TrialResult {
	out := make([]TrialResult, len(cfgs))
	forEachIndex(len(cfgs), func(i int) {
		out[i] = RunTrial(cfgs[i])
	})
	return out
}
