package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"sync/atomic"
	"time"

	"pythia/internal/serve"
)

// This file benchmarks the durable serving plane (write-ahead journal +
// snapshots + crash recovery): it ingests the open-loop trace into a
// journaled server, kills the batch loop with an injected crash, and
// measures how long a fresh process takes to recover the collector —
// snapshot load plus journal-tail replay — at several snapshot cadences.
// Recovery is proven correct the same way the serve bench proves sharding:
// the recovered placement digest must be bit-identical to the in-process
// oracle's, with zero leaked bookings.

// RecoveryConfig parameterizes the recovery benchmark.
type RecoveryConfig struct {
	// Jobs is the number of open-loop jobs flattened into the op trace.
	Jobs int
	// ChunkOps is the operation count per ingest request (= one journal
	// record, since the bench submits sequentially).
	ChunkOps int
	// ClockHz drives the logical clock so the trace has one deterministic
	// outcome the oracle can reproduce.
	ClockHz float64
	Seed    uint64

	// SnapshotEverys lists the snapshot cadences (batches between
	// snapshots) to compare; -1 disables snapshots so recovery replays the
	// whole journal — the worst case the cadence is bought against.
	SnapshotEverys []int
	// FsyncEvery is the journal sync policy under test (0 = every append).
	FsyncEvery int

	// Server shape (see serve.Config).
	Shards       int
	FatTreeK     int
	HostsPerEdge int
}

// Defaults fills unset fields with the CI smoke shape.
func (c RecoveryConfig) Defaults() RecoveryConfig {
	if c.Jobs == 0 {
		c.Jobs = 40
	}
	if c.ChunkOps == 0 {
		c.ChunkOps = 64
	}
	if c.ClockHz == 0 {
		c.ClockHz = 1000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.SnapshotEverys) == 0 {
		c.SnapshotEverys = []int{-1, 8, 32}
	}
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.FatTreeK == 0 {
		c.FatTreeK = 4
	}
	return c
}

// RecoveryRow is one snapshot cadence's benchmark row.
type RecoveryRow struct {
	SnapshotEvery int `json:"snapshot_every"` // -1 = snapshots disabled

	// Journal shape at crash time.
	WALRecords  int   `json:"wal_records"`
	WALSegments int   `json:"wal_segments"`
	WALBytes    int64 `json:"wal_bytes"`
	Snapshots   int   `json:"snapshots"`

	// Recovery cost: ReplayedRecords is the journal tail applied after the
	// snapshot; RecoverySec is the server's own snapshot-load + replay
	// timing; NewWallSec is the full serve.New wall time including fabric
	// construction.
	ReplayedRecords int     `json:"replayed_records"`
	RecoverySec     float64 `json:"recovery_sec"`
	NewWallSec      float64 `json:"new_wall_sec"`

	// Correctness proof.
	Digest              string `json:"placement_digest"`
	DigestMatchesOracle bool   `json:"digest_matches_oracle"`
	LeakedBookings      int    `json:"leaked_bookings"`
}

// RecoveryResult is the benchmark artifact (BENCH_recovery.json).
type RecoveryResult struct {
	Jobs         int           `json:"jobs"`
	Ops          int           `json:"ops"`
	Requests     int           `json:"requests"`
	FsyncEvery   int           `json:"fsync_every"`
	IngestSec    float64       `json:"ingest_sec"` // journaled sequential ingest, first row
	OracleDigest string        `json:"oracle_digest"`
	Rows         []RecoveryRow `json:"rows"`
}

// RunRecoveryBench runs one crash-and-recover cycle per snapshot cadence
// and returns the artifact. The returned error reports infrastructure
// failures; oracle mismatches and leaks are reported in the rows (CI
// asserts on them).
func RunRecoveryBench(cfg RecoveryConfig) (*RecoveryResult, error) {
	cfg = cfg.Defaults()
	shared := ServeConfig{
		Jobs: cfg.Jobs, ChunkOps: cfg.ChunkOps, ClockHz: cfg.ClockHz,
		Seed: cfg.Seed, FatTreeK: cfg.FatTreeK, HostsPerEdge: cfg.HostsPerEdge,
	}.Defaults()
	base := serve.Config{
		Shards:       cfg.Shards,
		ClockHz:      cfg.ClockHz,
		FatTreeK:     cfg.FatTreeK,
		HostsPerEdge: cfg.HostsPerEdge,
		FsyncEvery:   cfg.FsyncEvery,
	}.Defaults()

	probe, err := serve.New(base)
	if err != nil {
		return nil, err
	}
	trace := serveTrace(shared, probe.NumHosts())
	reqs := chunkRequests(trace, cfg.ChunkOps)
	bodies := make([][]byte, len(reqs))
	for i, req := range reqs {
		if bodies[i], err = json.Marshal(req); err != nil {
			return nil, err
		}
	}
	oracle, oracleLeaks := oracleDigest(shared, base, reqs)
	if oracleLeaks != 0 {
		return nil, fmt.Errorf("oracle replay leaked %d bookings", oracleLeaks)
	}
	res := &RecoveryResult{
		Jobs:         cfg.Jobs,
		Ops:          len(trace),
		Requests:     len(reqs),
		FsyncEvery:   cfg.FsyncEvery,
		OracleDigest: fmt.Sprintf("%016x", oracle),
	}

	for _, every := range cfg.SnapshotEverys {
		row, err := runRecoveryRow(base, bodies, every, res)
		if err != nil {
			return nil, fmt.Errorf("snapshot_every=%d: %w", every, err)
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

// runRecoveryRow ingests the trace into a journaled server, crashes it,
// and measures a fresh process recovering from the journal.
func runRecoveryRow(base serve.Config, bodies [][]byte, every int, res *RecoveryResult) (*RecoveryRow, error) {
	walDir, err := os.MkdirTemp("", "pythia-bench-wal-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(walDir)

	// Phase 1 — journaled ingest, then an injected crash. The hook arms
	// only for the sentinel batch at the end, and fires before its append:
	// the journal holds exactly the real trace, abandoned unsealed the way
	// kill -9 leaves it.
	var armed atomic.Bool
	cfgA := base
	cfgA.WALDir = walDir
	cfgA.SnapshotEvery = every
	cfgA.CrashHook = func(p serve.CrashPoint) bool {
		return p == serve.CrashBeforeAppend && armed.Load()
	}
	srv, err := serve.New(cfgA)
	if err != nil {
		return nil, err
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	client := ts.Client()
	begin := time.Now()
	for _, b := range bodies {
		if err := postIngest(client, ts.URL, b); err != nil {
			ts.Close()
			return nil, fmt.Errorf("ingest: %w", err)
		}
	}
	if res.IngestSec == 0 {
		res.IngestSec = time.Since(begin).Seconds()
	}
	st, err := fetchStats(client, ts.URL)
	if err != nil {
		ts.Close()
		return nil, err
	}
	row := &RecoveryRow{
		SnapshotEvery: every,
		WALRecords:    st.WALRecords,
		WALSegments:   st.WALSegments,
		WALBytes:      st.WALBytes,
		Snapshots:     st.Snapshots,
	}
	armed.Store(true)
	// The sentinel dies at the crash point and answers 503; that is the
	// point. Any other failure mode still leaves the journal behind.
	_ = postIngest(client, ts.URL, []byte(`{"done_jobs":[1000000]}`))
	ts.Close()

	// Phase 2 — recovery: a fresh process opens the abandoned journal.
	cfgB := base
	cfgB.WALDir = walDir
	cfgB.SnapshotEvery = every
	cfgB.Recover = true
	// Recovery runs asynchronously in Start behind the readiness gate, so
	// the measured window is New through AwaitReady.
	t0 := time.Now()
	srv2, err := serve.New(cfgB)
	if err != nil {
		return nil, fmt.Errorf("recover: %w", err)
	}
	srv2.Start()
	if err := srv2.AwaitReady(contextWithTimeout(60 * time.Second)); err != nil {
		return nil, fmt.Errorf("recover: %w", err)
	}
	row.NewWallSec = time.Since(t0).Seconds()
	ts2 := httptest.NewServer(srv2.Handler())
	st2, err := fetchStats(ts2.Client(), ts2.URL)
	ts2.Close()
	if err != nil {
		return nil, err
	}
	if err := srv2.Shutdown(contextWithTimeout(5 * time.Second)); err != nil {
		return nil, err
	}
	row.ReplayedRecords = st2.RecoveredRecords
	row.RecoverySec = st2.RecoverySec
	row.Digest = st2.PlacementDigest
	row.DigestMatchesOracle = st2.PlacementDigest == res.OracleDigest
	row.LeakedBookings = st2.OutstandingBookings
	return row, nil
}

// String renders the artifact as the human-readable table the binary
// prints.
func (r *RecoveryResult) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "recovery bench: %d jobs, %d ops in %d requests, fsync_every=%d, ingest %.2fs, oracle %s\n",
		r.Jobs, r.Ops, r.Requests, r.FsyncEvery, r.IngestSec, r.OracleDigest)
	fmt.Fprintf(&b, "%-10s %-8s %-9s %-10s %-6s %-9s %12s %12s %-12s %-6s\n",
		"snap-every", "records", "segments", "bytes", "snaps", "replayed", "recover(s)", "new(s)", "digest==orc", "leaks")
	for _, row := range r.Rows {
		every := fmt.Sprintf("%d", row.SnapshotEvery)
		if row.SnapshotEvery < 0 {
			every = "never"
		}
		fmt.Fprintf(&b, "%-10s %-8d %-9d %-10d %-6d %-9d %12.4f %12.4f %-12v %-6d\n",
			every, row.WALRecords, row.WALSegments, row.WALBytes, row.Snapshots,
			row.ReplayedRecords, row.RecoverySec, row.NewWallSec,
			row.DigestMatchesOracle, row.LeakedBookings)
	}
	return b.String()
}
