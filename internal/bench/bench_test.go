package bench

import (
	"strings"
	"testing"

	"pythia/internal/sim"
	"pythia/internal/workload"
)

// tinyScale keeps unit tests fast; shape assertions use the real scales in
// the repo-level bench harness.
func tinyScale() Scale {
	return Scale{
		SortBytes:        4 * workload.GB,
		NutchBytes:       2 * workload.GB,
		IntegerSortBytes: 2 * workload.GB,
		Repeats:          1,
	}
}

func TestSchedulerString(t *testing.T) {
	if ECMP.String() != "ECMP" || Pythia.String() != "Pythia" || Hedera.String() != "Hedera" {
		t.Fatal("scheduler strings")
	}
	if Scheduler(9).String() == "" {
		t.Fatal("unknown scheduler empty")
	}
}

func TestStandardLevels(t *testing.T) {
	lv := StandardLevels()
	if len(lv) != 5 || lv[0].Ratio != 0 || lv[4].Ratio != 20 {
		t.Fatalf("levels: %+v", lv)
	}
}

func TestRunTrialAllSchedulers(t *testing.T) {
	spec := workload.Sort(2*workload.GB, 6, 1)
	for _, s := range []Scheduler{ECMP, Pythia, Hedera} {
		res := RunTrial(TrialConfig{Spec: spec, Scheduler: s, Oversub: Oversub{"1:10", 10}, Seed: 1})
		if res.JobSec <= 0 {
			t.Fatalf("%v: job time %v", s, res.JobSec)
		}
		if !(res.MapSec <= res.ShuffleSec && res.ShuffleSec <= res.JobSec) {
			t.Fatalf("%v: phase ordering map=%v shuffle=%v job=%v", s, res.MapSec, res.ShuffleSec, res.JobSec)
		}
		if res.Overhead.Spills != spec.NumMaps {
			t.Fatalf("%v: spills=%d", s, res.Overhead.Spills)
		}
	}
}

func TestRunTrialDeterministic(t *testing.T) {
	spec := workload.Nutch(1*workload.GB, 6, 2)
	cfg := TrialConfig{Spec: spec, Scheduler: Pythia, Oversub: Oversub{"1:10", 10}, Seed: 5}
	a := RunTrial(cfg)
	b := RunTrial(cfg)
	if a.JobSec != b.JobSec {
		t.Fatalf("nondeterministic trials: %v vs %v", a.JobSec, b.JobSec)
	}
}

func TestOversubLoadsTrunksAsymmetrically(t *testing.T) {
	// With higher ratio, ECMP jobs must be slower; monotonicity check.
	spec := workload.Sort(4*workload.GB, 6, 1)
	prev := 0.0
	for _, lvl := range StandardLevels() {
		res := RunTrial(TrialConfig{Spec: spec, Scheduler: ECMP, Oversub: lvl, Seed: 1})
		if res.JobSec < prev-1e-6 {
			t.Fatalf("ECMP time decreased at %s: %v < %v", lvl.Label, res.JobSec, prev)
		}
		prev = res.JobSec
	}
}

func TestFig3Shape(t *testing.T) {
	rows := RunFig3(tinyScale())
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	last := rows[len(rows)-1]
	if last.Speedup < 0.05 {
		t.Fatalf("Fig3 1:20 speedup = %.1f%%, want >= 5%%", last.Speedup*100)
	}
	// Pythia never loses badly anywhere.
	for _, r := range rows {
		if r.Speedup < -0.05 {
			t.Fatalf("Pythia lost at %s: %.1f%%", r.Oversub, r.Speedup*100)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	rows := RunFig4(tinyScale())
	last := rows[len(rows)-1]
	first := rows[0]
	if last.Speedup <= first.Speedup {
		t.Fatalf("speedup not growing with oversubscription: %v -> %v", first.Speedup, last.Speedup)
	}
	if last.Speedup < 0.10 {
		t.Fatalf("Fig4 1:20 speedup = %.1f%%", last.Speedup*100)
	}
}

func TestFig5PredictionEfficacy(t *testing.T) {
	res := RunFig5(tinyScale())
	if len(res.PerHost) == 0 {
		t.Fatal("no per-host prediction results")
	}
	if res.MinLeadSec <= 0 {
		t.Fatalf("min lead = %v, want positive (prediction ahead of traffic)", res.MinLeadSec)
	}
	if res.MeanOverestimate < 0.01 || res.MeanOverestimate > 0.10 {
		t.Fatalf("overestimate = %.3f, want within the paper's 3–7%% band (loosely)", res.MeanOverestimate)
	}
}

func TestFig1aDiagram(t *testing.T) {
	ascii, svg := RunFig1a()
	for _, want := range []string{"toy-sort", "reduce-0", "reducer-0 fetched"} {
		if !strings.Contains(ascii, want) {
			t.Fatalf("fig1a ascii missing %q", want)
		}
	}
	if !strings.Contains(svg, "<svg") {
		t.Fatal("fig1a svg missing")
	}
}

func TestFig1bAdversarial(t *testing.T) {
	res := RunFig1b()
	if res.AdversarialSec <= res.OptimalSec*2 {
		t.Fatalf("hot-path time %v not clearly worse than clean-path %v",
			res.AdversarialSec, res.OptimalSec)
	}
	if !res.ECMPHitsHotPath {
		t.Fatal("no ECMP hash hit the hot path across 32 ports")
	}
	if !res.PythiaPickedCleanPath {
		t.Fatal("availability-based choice picked the hot path")
	}
}

func TestOverheadBand(t *testing.T) {
	res := RunOverhead(tinyScale())
	if res.MeanCPUFraction < 0.01 || res.MeanCPUFraction > 0.08 {
		t.Fatalf("CPU fraction = %v", res.MeanCPUFraction)
	}
	if res.RulesInstalled == 0 {
		t.Fatal("no rules installed in Pythia run")
	}
	if res.IntentsSent == 0 || res.MgmtBytes <= 0 {
		t.Fatalf("instrumentation accounting empty: %+v", res)
	}
}

func TestHederaComparisonOrdering(t *testing.T) {
	rows := RunHederaComparison(tinyScale())
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Pythia is never slower than ECMP; Hedera no (much) worse than
		// ECMP. At tiny scale Nutch is compute-bound, so ties are fine —
		// the strict win is asserted on the network-bound sort.
		if r.PythiaSec > r.ECMPSec+1e-6 {
			t.Fatalf("%s: pythia %v > ecmp %v", r.Workload, r.PythiaSec, r.ECMPSec)
		}
		if r.HederaSec > r.ECMPSec*1.05 {
			t.Fatalf("%s: hedera %v much worse than ecmp %v", r.Workload, r.HederaSec, r.ECMPSec)
		}
		if r.Workload == "sort" && r.PythiaSec >= r.ECMPSec {
			t.Fatalf("sort: pythia %v >= ecmp %v", r.PythiaSec, r.ECMPSec)
		}
	}
}

func TestFormatters(t *testing.T) {
	rows := []SpeedupRow{{Oversub: "1:10", ECMPSec: 100, PythiaSec: 80, Speedup: 0.25}}
	out := FormatSpeedupTable("T", rows)
	if !strings.Contains(out, "1:10") || !strings.Contains(out, "25.0%") {
		t.Fatalf("table: %s", out)
	}
	f5 := FormatFig5(Fig5Result{PerHost: []HostPrediction{{Name: "h", MinLeadSec: 1, MeanLeadSec: 2, Overestimate: 0.05}}, MinLeadSec: 1, MeanOverestimate: 0.05})
	if !strings.Contains(f5, "min lead") {
		t.Fatalf("fig5 format: %s", f5)
	}
}

func TestInstallLatencyOverride(t *testing.T) {
	spec := workload.Sort(2*workload.GB, 6, 1)
	slow := RunTrial(TrialConfig{Spec: spec, Scheduler: Pythia, Oversub: Oversub{"1:10", 10},
		InstallLatency: 500 * sim.Millisecond, Seed: 1})
	fast := RunTrial(TrialConfig{Spec: spec, Scheduler: Pythia, Oversub: Oversub{"1:10", 10}, Seed: 1})
	// With half-second installs, rules often arrive after flows started
	// (which then fall back to ECMP): never faster than the fast case.
	if slow.JobSec < fast.JobSec-1e-6 {
		t.Fatalf("slow installs beat fast: %v < %v", slow.JobSec, fast.JobSec)
	}
}

func TestExplicitControlPlaneMatchesDefault(t *testing.T) {
	// The full §III control-plane model (management network carrying
	// intents and FLOW_MODs) must reproduce the default pipeline's
	// results within a small tolerance — control traffic is tiny.
	spec := workload.Sort(4*workload.GB, 8, 11)
	base := RunTrial(TrialConfig{Spec: spec, Scheduler: Pythia, Oversub: Oversub{"1:10", 10}, Seed: 11})
	full := RunTrial(TrialConfig{Spec: spec, Scheduler: Pythia, Oversub: Oversub{"1:10", 10}, Seed: 11,
		ExplicitControlPlane: true})
	ratio := full.JobSec / base.JobSec
	if ratio > 1.05 || ratio < 0.95 {
		t.Fatalf("explicit control plane changed the outcome: %.1fs vs %.1fs", full.JobSec, base.JobSec)
	}
}
