package bench

import (
	"strings"
	"testing"

	"pythia/internal/workload"
)

func TestLowerBoundComponents(t *testing.T) {
	spec := workload.Sort(24*workload.GB, 10, 17)
	free := ComputeLowerBound(spec, Oversub{"none", 0})
	tight := ComputeLowerBound(spec, Oversub{"1:20", 20})
	if free.Sec() <= 0 || tight.Sec() <= 0 {
		t.Fatal("degenerate bounds")
	}
	// Tightening the network must raise (or hold) the bound, via the
	// network term.
	if tight.Sec() < free.Sec() {
		t.Fatalf("bound fell with contention: %v -> %v", free.Sec(), tight.Sec())
	}
	if tight.NetworkSec <= free.NetworkSec {
		t.Fatal("network term did not grow with oversubscription")
	}
	// Sec() picks the max.
	if free.Sec() != free.ComputeSec && free.Sec() != free.NetworkSec {
		t.Fatal("Sec() is neither component")
	}
}

func TestOptimalityGapShape(t *testing.T) {
	rows := RunOptimalityGap(Scale{SortBytes: 24e9})
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// No scheduler beats the bound.
		if r.PythiaSec < r.BoundSec || r.ECMPSec < r.BoundSec {
			t.Fatalf("bound violated at %s: bound=%.1f pythia=%.1f ecmp=%.1f",
				r.Oversub, r.BoundSec, r.PythiaSec, r.ECMPSec)
		}
		if r.ECMPGap < r.PythiaGap-1e-9 {
			t.Fatalf("ECMP closer to optimal than Pythia at %s", r.Oversub)
		}
	}
	// The headline shape: Pythia's gap shrinks as the network becomes the
	// bottleneck; ECMP's does not shrink below ~2x the bound.
	first, last := rows[0], rows[len(rows)-1]
	if last.PythiaGap >= first.PythiaGap {
		t.Fatalf("Pythia gap did not shrink with contention: %.2f -> %.2f",
			first.PythiaGap, last.PythiaGap)
	}
	if last.ECMPGap < 0.8 {
		t.Fatalf("ECMP unexpectedly near-optimal at 1:20: gap %.2f", last.ECMPGap)
	}
}

func TestFormatGapTable(t *testing.T) {
	out := FormatGapTable("E11", []GapRow{{Oversub: "1:10", BoundSec: 100, PythiaSec: 150, ECMPSec: 220, PythiaGap: 0.5, ECMPGap: 1.2}})
	if !strings.Contains(out, "1:10") || !strings.Contains(out, "50%") {
		t.Fatalf("table: %s", out)
	}
}
