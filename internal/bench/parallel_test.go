package bench

import (
	"reflect"
	"sync/atomic"
	"testing"

	"pythia/internal/hadoop"
	"pythia/internal/workload"
)

// withParallelism runs the body at a fixed pool width and restores the
// package default afterwards so test order never matters.
func withParallelism(t *testing.T, n int, body func()) {
	t.Helper()
	prev := parallelism
	SetParallelism(n)
	defer func() { parallelism = prev }()
	body()
}

// The core golden guarantee of the parallel harness: RunTrials assembles
// results in submission order, so serial and wide runs are deeply equal —
// including every FlowRecord of every trial.
func TestRunTrialsParallelMatchesSerial(t *testing.T) {
	cfgs := []TrialConfig{
		{Spec: workload.Sort(1*workload.GB, 6, 1), Scheduler: ECMP,
			Oversub: Oversub{Label: "1:5", Ratio: 5}, Seed: 1, CollectFlowHistory: true},
		{Spec: workload.Sort(1*workload.GB, 6, 1), Scheduler: Pythia,
			Oversub: Oversub{Label: "1:5", Ratio: 5}, Seed: 1, CollectFlowHistory: true},
		{Spec: workload.Nutch(1*workload.GB, 6, 2), Scheduler: Pythia,
			Oversub: Oversub{Label: "1:10", Ratio: 10}, Seed: 2, CollectFlowHistory: true},
		{Spec: workload.Sort(1*workload.GB, 6, 3), Scheduler: Hedera,
			Oversub: Oversub{Label: "1:2", Ratio: 2}, Seed: 3, CollectFlowHistory: true},
		{Spec: workload.Sort(1*workload.GB, 6, 4), Scheduler: Pythia,
			Oversub: Oversub{Label: "none", Ratio: 0}, Seed: 4, CollectFlowHistory: true},
		{Spec: workload.Nutch(1*workload.GB, 6, 5), Scheduler: ECMP,
			Oversub: Oversub{Label: "1:20", Ratio: 20}, Seed: 5, CollectFlowHistory: true},
	}
	var serial, wide []TrialResult
	withParallelism(t, 1, func() { serial = RunTrials(cfgs) })
	withParallelism(t, 8, func() { wide = RunTrials(cfgs) })
	if len(serial) != len(cfgs) || len(wide) != len(cfgs) {
		t.Fatalf("result counts: serial %d, wide %d, want %d", len(serial), len(wide), len(cfgs))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], wide[i]) {
			t.Fatalf("trial %d diverged between serial and parallel:\nserial %+v\nwide   %+v",
				i, serial[i], wide[i])
		}
	}
}

// A figure-level sweep (the Fig. 4 shape, scaled down) must emit identical
// rows — including the float aggregates whose accumulation order would
// betray any reordering — at any pool width.
func TestSpeedupSweepParallelMatchesSerial(t *testing.T) {
	scale := Scale{SortBytes: 2 * workload.GB, Repeats: 2}
	mk := func(seed uint64) *hadoop.JobSpec {
		return workload.Sort(scale.SortBytes, 6, seed)
	}
	levels := []Oversub{{Label: "1:5", Ratio: 5}, {Label: "1:10", Ratio: 10}}
	var serial, wide []SpeedupRow
	withParallelism(t, 1, func() { serial = runSpeedupSweep(mk, scale, levels) })
	withParallelism(t, 8, func() { wide = runSpeedupSweep(mk, scale, levels) })
	if !reflect.DeepEqual(serial, wide) {
		t.Fatalf("sweep rows diverged:\nserial %+v\nwide   %+v", serial, wide)
	}
}

// The trace comparison (multi-job Poisson churn) through RunTrace's fan-out
// path must also be width-independent.
func TestTraceComparisonParallelMatchesSerial(t *testing.T) {
	lvl := Oversub{Label: "1:10", Ratio: 10}
	var serial, wide TraceComparison
	withParallelism(t, 1, func() { serial = RunTraceComparison(lvl, 3) })
	withParallelism(t, 6, func() { wide = RunTraceComparison(lvl, 3) })
	if !reflect.DeepEqual(serial, wide) {
		t.Fatalf("trace comparison diverged:\nserial %+v\nwide   %+v", serial, wide)
	}
}

// Hammer the pool under -race: many tiny tasks writing disjoint slots plus a
// shared atomic, across repeated rounds, to surface any coordination bug.
func TestForEachIndexRaceHammer(t *testing.T) {
	withParallelism(t, 8, func() {
		for round := 0; round < 50; round++ {
			const n = 257
			out := make([]int, n)
			var calls atomic.Int64
			forEachIndex(n, func(i int) {
				out[i] = i*i + round
				calls.Add(1)
			})
			if calls.Load() != n {
				t.Fatalf("round %d: %d calls, want %d", round, calls.Load(), n)
			}
			for i, v := range out {
				if v != i*i+round {
					t.Fatalf("round %d: slot %d = %d, want %d", round, i, v, i*i+round)
				}
			}
		}
	})
}

// A worker panic must surface on the calling goroutine after the pool drains,
// not crash the process or deadlock.
func TestForEachIndexPanicPropagates(t *testing.T) {
	withParallelism(t, 4, func() {
		defer func() {
			if r := recover(); r != "boom" {
				t.Fatalf("recovered %v, want \"boom\"", r)
			}
		}()
		forEachIndex(16, func(i int) {
			if i == 7 {
				panic("boom")
			}
		})
		t.Fatal("forEachIndex returned instead of panicking")
	})
}
