package bench

import (
	"reflect"
	"strings"
	"testing"
)

// The CI smoke: a short-horizon fixed-seed steady run must detect warm-up,
// complete a healthy share of arrivals, and leak zero bookings.
func TestSteadySmoke(t *testing.T) {
	cfg := SteadyConfig{Scheduler: Pythia, Oversub: Oversub{"1:10", 10},
		HorizonSec: 1200, Seed: 7, CollectFlight: true}
	cfg.Workload.BaseRateJobsPerSec = 0.12
	r, err := RunSteady(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.WarmupOK {
		t.Fatal("warm-up not detected on the smoke run")
	}
	if r.LeakedBookings != 0 {
		t.Fatalf("%d bookings leaked after job completion", r.LeakedBookings)
	}
	if r.Submitted == 0 || r.Completed == 0 {
		t.Fatalf("degenerate run: %+v", r)
	}
	if float64(r.Completed) < 0.8*float64(r.Submitted) {
		t.Fatalf("only %d of %d arrivals completed at a moderate rate", r.Completed, r.Submitted)
	}
	if r.P50Sec <= 0 || r.P95Sec < r.P50Sec || r.P99Sec < r.P95Sec {
		t.Fatalf("percentiles out of order: %+v", r)
	}
	if r.SLOAttainment <= 0 || r.SLOAttainment > 1 {
		t.Fatalf("SLO attainment = %v", r.SLOAttainment)
	}
	if len(r.Tenants) != 3 {
		t.Fatalf("tenant scorecards = %d, want 3", len(r.Tenants))
	}
	if len(r.Windows) == 0 {
		t.Fatal("no measurement windows")
	}
	if r.MeanInFlight <= 0 || r.MeanInFlight > float64(cfg.MaxInFlight)+8 {
		t.Fatalf("mean in-flight = %v", r.MeanInFlight)
	}
	if r.Quality == nil || r.Quality.CoveredFlows == 0 {
		t.Fatal("flight quality not collected")
	}
}

// A seeded steady run is one deterministic simulation: repeating it must
// reproduce the result bit for bit.
func TestSteadyDeterministic(t *testing.T) {
	cfg := SteadyConfig{Scheduler: Pythia, Oversub: Oversub{"1:10", 10},
		HorizonSec: 900, Seed: 21, CollectFlight: true}
	cfg.Workload.BaseRateJobsPerSec = 0.1
	a, errA := RunSteady(cfg)
	b, errB := RunSteady(cfg)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("steady run nondeterministic:\n%+v\n%+v", a, b)
	}
}

// The frontier fans cells across the worker pool; results must be identical
// at any parallelism, including the flight-derived fields.
func TestSteadyFrontierParallelMatchesSerial(t *testing.T) {
	base := SteadyConfig{Oversub: Oversub{"1:10", 10}, HorizonSec: 900,
		Seed: 7, CollectFlight: true}
	rates := []float64{0.06, 0.12}
	var serial, wide []SteadyResult
	var errS, errW error
	withParallelism(t, 1, func() { serial, errS = RunSteadyFrontier(base, rates) })
	withParallelism(t, 8, func() { wide, errW = RunSteadyFrontier(base, rates) })
	if errS != nil || errW != nil {
		t.Fatal(errS, errW)
	}
	if len(serial) != len(rates)*len(SteadySchedulers()) {
		t.Fatalf("frontier rows = %d", len(serial))
	}
	if !reflect.DeepEqual(serial, wide) {
		t.Fatalf("frontier diverged between serial and parallel runs")
	}
}

// The paper's claim in open-loop terms: Pythia's tail-latency advantage
// over ECMP must grow as offered load approaches saturation.
func TestSteadyPythiaAdvantageGrowsWithLoad(t *testing.T) {
	base := SteadyConfig{Oversub: Oversub{"1:10", 10}, HorizonSec: 1800, Seed: 7}
	rates := []float64{0.05, 0.20}
	rows, err := RunSteadyFrontier(base, rates)
	if err != nil {
		t.Fatal(err)
	}
	cell := func(rate float64, sched Scheduler) SteadyResult {
		for _, r := range rows {
			if r.RateJobsPerSec == rate && r.Scheduler == sched.String() {
				return r
			}
		}
		t.Fatalf("missing frontier cell %v/%v", rate, sched)
		return SteadyResult{}
	}
	gapLight := cell(0.05, ECMP).P99Sec - cell(0.05, Pythia).P99Sec
	gapHeavy := cell(0.20, ECMP).P99Sec - cell(0.20, Pythia).P99Sec
	if gapLight <= 0 {
		t.Fatalf("Pythia p99 not ahead even at light load (gap %v)", gapLight)
	}
	if gapHeavy <= 2*gapLight {
		t.Fatalf("p99 advantage did not grow with load: light %v heavy %v", gapLight, gapHeavy)
	}
	// Near saturation the SLO frontier must separate too: ECMP strands its
	// low-priority batch jobs while Pythia keeps placing them.
	if e, p := cell(0.20, ECMP).SLOAttainment, cell(0.20, Pythia).SLOAttainment; e >= p {
		t.Fatalf("SLO attainment at 0.20: ECMP %v >= Pythia %v", e, p)
	}
}

func TestSteadyUnknownSchedulerErrors(t *testing.T) {
	if _, err := RunSteady(SteadyConfig{Scheduler: Scheduler(99)}); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestFormatSteadyFrontier(t *testing.T) {
	out := FormatSteadyFrontier([]SteadyResult{{
		Scheduler: "Pythia", RateJobsPerSec: 0.12, Completed: 190,
		P50Sec: 22, P95Sec: 113, P99Sec: 159, SLOAttainment: 0.98,
		LateTailCorrelation: -0.68,
	}})
	for _, want := range []string{"E14", "Pythia", "0.120", "98.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q in:\n%s", want, out)
		}
	}
}
