package bench

import (
	"fmt"
	"strings"

	"pythia/internal/hadoop"
	"pythia/internal/instrument"
	"pythia/internal/stats"
	"pythia/internal/workload"
)

// FlowCombLike configures a trial to approximate the FlowComb system the
// paper compares against in §VI: the same predict-then-program idea, but
// (a) slower prediction — FlowComb's per-server agents detect intermediate
// data by periodic scanning rather than Pythia's filesystem-notification +
// index-decode path, costing seconds of lead; (b) software switches with
// order-of-magnitude higher rule-install latency; (c) no flow-criticality
// criterion. The paper argues Pythia's deep index analysis yields "more
// timely prediction compared to the results communicated by FlowComb".
func FlowCombLike(cfg TrialConfig) TrialConfig {
	cfg.Scheduler = Pythia // same predictive architecture...
	cfg.Instrument = instrument.Config{
		// ...but detection by periodic scanning of Hadoop state rather
		// than filesystem notification + index decode. The FlowComb
		// paper reports a significant fraction of transfers detected
		// only after their flows started; ~6 s straddles our runtime's
		// map-finish→fetch gap the same way.
		FSNotifyDelay: 6,
	}
	cfg.InstallLatency = 0.02 // software switch (Open vSwitch era)
	cfg.PythiaCfg.UseCriticality = false
	return cfg
}

// RelatedRow is one scheduler family's result in the E9 comparison.
type RelatedRow struct {
	System string
	JobSec float64
}

// RunFlowCombComparison (E9) pits ECMP, a FlowComb-like configuration and
// Pythia against each other on the sort at 1:10 (FlowComb's published
// evaluation point). Expected ordering: ECMP ≥ FlowComb-like ≥ Pythia, with
// the FlowComb/Pythia gap small when the shuffle gap exceeds FlowComb's
// prediction delay (the timeliness argument cuts in only for short-gap
// flows).
func RunFlowCombComparison(scale Scale) []RelatedRow {
	lvl := Oversub{Label: "1:10", Ratio: 10}
	var ecmpT, fcT, pyT []float64
	for _, seed := range ablationSeeds {
		spec := workload.Sort(scale.SortBytes, 10, seed)
		ecmpT = append(ecmpT, RunTrial(TrialConfig{Spec: spec, Scheduler: ECMP, Oversub: lvl, Seed: seed}).JobSec)
		fcT = append(fcT, RunTrial(FlowCombLike(TrialConfig{Spec: spec, Oversub: lvl, Seed: seed})).JobSec)
		pyT = append(pyT, RunTrial(TrialConfig{Spec: spec, Scheduler: Pythia, Oversub: lvl, Seed: seed}).JobSec)
	}
	return []RelatedRow{
		{System: "ECMP", JobSec: stats.Mean(ecmpT)},
		{System: "FlowComb-like", JobSec: stats.Mean(fcT)},
		{System: "Pythia", JobSec: stats.Mean(pyT)},
	}
}

// RunPartitionerComparison (E10) contrasts network-level skew handling
// (Pythia) with application-level skew handling (an adaptive/sampling
// partitioner that rebalances per-reducer volumes), the alternative §II
// mentions ("this problem can be addressed at multiple levels, e.g. by
// dynamically adapting the partitioning function"). The two compose: the
// balanced partitioner removes reducer imbalance, Pythia removes path
// imbalance.
func RunPartitionerComparison(scale Scale) []RelatedRow {
	lvl := Oversub{Label: "1:10", Ratio: 10}
	mk := func(seed uint64, balanced bool) *hadoop.JobSpec {
		spec := workload.Generate(workload.Config{
			Name: "skewed-sort", InputBytes: scale.SortBytes,
			BlockBytes: 256 * workload.MB, NumReduces: 10,
			SkewExponent: 1.2, Seed: seed,
		})
		if balanced {
			workload.RebalancePartitions(spec, 0.9)
		}
		return spec
	}
	var rows []RelatedRow
	for _, v := range []struct {
		name      string
		scheduler Scheduler
		balanced  bool
	}{
		{"ECMP + hash partitioner", ECMP, false},
		{"ECMP + balanced partitioner", ECMP, true},
		{"Pythia + hash partitioner", Pythia, false},
		{"Pythia + balanced partitioner", Pythia, true},
	} {
		var times []float64
		for _, seed := range ablationSeeds {
			times = append(times, RunTrial(TrialConfig{
				Spec: mk(seed, v.balanced), Scheduler: v.scheduler,
				Oversub: lvl, Seed: seed,
			}).JobSec)
		}
		rows = append(rows, RelatedRow{System: v.name, JobSec: stats.Mean(times)})
	}
	return rows
}

// FormatRelatedTable renders an E9/E10 comparison.
func FormatRelatedTable(title string, rows []RelatedRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-30s %12s\n", "system", "job (s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-30s %12.1f\n", r.System, r.JobSec)
	}
	return b.String()
}
