package plot

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBarChartRender(t *testing.T) {
	c := BarChart{
		Title:  "Fig3",
		YLabel: "seconds",
		Series: []string{"ECMP", "Pythia"},
		Groups: []BarGroup{
			{Label: "none", Values: []float64{100, 98}},
			{Label: "1:20", Values: []float64{220, 150}},
		},
		Line:      []float64{0.02, 0.46},
		LineLabel: "speedup",
		LinePct:   true,
	}
	svg := c.Render()
	// Right axis tops out at niceCeil(0.46)=0.5 → "50%" tick.
	for _, want := range []string{"<svg", "</svg>", "Fig3", "ECMP", "Pythia", "polyline", "none", "1:20", "50%"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("bar chart missing %q", want)
		}
	}
	if n := strings.Count(svg, "<rect"); n < 4 {
		t.Fatalf("only %d rects", n)
	}
}

func TestBarChartEmpty(t *testing.T) {
	if (BarChart{}).Render() != "" {
		t.Fatal("empty chart rendered")
	}
	if (BarChart{Series: []string{"a"}}).Render() != "" {
		t.Fatal("chart without groups rendered")
	}
}

func TestLineChartRender(t *testing.T) {
	c := LineChart{
		Title:  "Fig5",
		XLabel: "time (s)",
		YLabel: "bytes",
		Series: []LineSeries{
			{Name: "predicted", X: []float64{0, 10, 20}, Y: []float64{0, 5e8, 1e9}, Step: true},
			{Name: "measured", X: []float64{0, 15, 30}, Y: []float64{0, 4e8, 1e9}},
		},
	}
	svg := c.Render()
	for _, want := range []string{"<svg", "predicted", "measured", "polyline", "time (s)"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("line chart missing %q", want)
		}
	}
}

func TestLineChartEmpty(t *testing.T) {
	if (LineChart{}).Render() != "" {
		t.Fatal("empty line chart rendered")
	}
	if (LineChart{Series: []LineSeries{{Name: "z"}}}).Render() != "" {
		t.Fatal("zero-extent chart rendered")
	}
}

func TestNiceCeil(t *testing.T) {
	cases := map[float64]float64{
		0.3: 0.5, 1: 1, 1.2: 2, 3: 5, 7: 10, 42: 50, 99: 100, 101: 200,
	}
	for in, want := range cases {
		if got := niceCeil(in); got != want {
			t.Errorf("niceCeil(%v) = %v, want %v", in, got, want)
		}
	}
	if niceCeil(-1) != 1 || niceCeil(0) != 1 {
		t.Error("niceCeil non-positive")
	}
}

func TestFmtTick(t *testing.T) {
	cases := map[float64]string{5: "5", 1500: "1.5k", 2.5e6: "2.5M", 3e9: "3.0G"}
	for in, want := range cases {
		if got := fmtTick(in); got != want {
			t.Errorf("fmtTick(%v) = %q, want %q", in, got, want)
		}
	}
}

// Property: any chart with positive values renders well-formed SVG
// bracketing and never emits NaN coordinates.
func TestPropertyBarChartWellFormed(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 || len(vals) > 12 {
			return true
		}
		groups := make([]BarGroup, len(vals))
		for i, v := range vals {
			groups[i] = BarGroup{Label: "g", Values: []float64{float64(v) + 1}}
		}
		svg := BarChart{Title: "p", Series: []string{"s"}, Groups: groups}.Render()
		return strings.HasPrefix(svg, "<svg") && strings.HasSuffix(svg, "</svg>") &&
			!strings.Contains(svg, "NaN")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
