// Package plot renders the experiment results as standalone SVG documents —
// grouped bar charts with an overlaid speedup series for Figs. 3/4 (the
// paper's presentation) and step-line charts for the Fig. 5 cumulative
// traffic curves. No dependencies beyond fmt/strings; output is valid SVG
// 1.1.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Size and style constants shared by the charts.
const (
	width    = 760
	height   = 420
	marginL  = 70
	marginR  = 70
	marginT  = 48
	marginB  = 64
	plotW    = width - marginL - marginR
	plotH    = height - marginT - marginB
	fontFace = "font-family=\"Helvetica,Arial,sans-serif\""
)

var seriesColors = []string{"#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2", "#af7aa1"}

// BarGroup is one x-axis category with one value per series.
type BarGroup struct {
	Label  string
	Values []float64
}

// BarChart describes a grouped bar chart with an optional secondary line
// (e.g. relative speedup on the right axis, as in Figs. 3/4).
type BarChart struct {
	Title     string
	YLabel    string
	Series    []string
	Groups    []BarGroup
	Line      []float64 // optional; len == len(Groups)
	LineLabel string
	LinePct   bool // render right-axis ticks as percentages
}

// Render produces the SVG document. It returns an empty string for charts
// with no data.
func (c BarChart) Render() string {
	if len(c.Groups) == 0 || len(c.Series) == 0 {
		return ""
	}
	maxY := 0.0
	for _, g := range c.Groups {
		for _, v := range g.Values {
			if v > maxY {
				maxY = v
			}
		}
	}
	if maxY <= 0 {
		maxY = 1
	}
	maxY = niceCeil(maxY)

	var b strings.Builder
	header(&b, c.Title)
	axes(&b, c.YLabel, maxY, false)

	groupW := float64(plotW) / float64(len(c.Groups))
	barW := groupW * 0.7 / float64(len(c.Series))
	for gi, g := range c.Groups {
		gx := float64(marginL) + groupW*float64(gi)
		for si, v := range g.Values {
			h := v / maxY * float64(plotH)
			x := gx + groupW*0.15 + barW*float64(si)
			y := float64(marginT+plotH) - h
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s %s: %.1f</title></rect>`,
				x, y, barW, h, seriesColors[si%len(seriesColors)], g.Label, c.Series[si], v)
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" %s font-size="12" text-anchor="middle">%s</text>`,
			gx+groupW/2, marginT+plotH+18, fontFace, g.Label)
	}

	// Legend.
	for si, name := range c.Series {
		lx := marginL + 10 + si*140
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`,
			lx, marginT-24, seriesColors[si%len(seriesColors)])
		fmt.Fprintf(&b, `<text x="%d" y="%d" %s font-size="12">%s</text>`,
			lx+16, marginT-14, fontFace, name)
	}

	// Secondary line with right axis.
	if len(c.Line) == len(c.Groups) {
		maxL := 0.0
		for _, v := range c.Line {
			if v > maxL {
				maxL = v
			}
		}
		if maxL <= 0 {
			maxL = 1
		}
		maxL = niceCeil(maxL)
		var pts []string
		for gi, v := range c.Line {
			x := float64(marginL) + groupW*(float64(gi)+0.5)
			y := float64(marginT+plotH) - v/maxL*float64(plotH)
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x, y))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="#e15759" stroke-width="2.5"/>`,
			strings.Join(pts, " "))
		for _, p := range pts {
			var x, y float64
			fmt.Sscanf(p, "%f,%f", &x, &y)
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3.5" fill="#e15759"/>`, x, y)
		}
		// Right axis ticks.
		for i := 0; i <= 4; i++ {
			v := maxL * float64(i) / 4
			y := float64(marginT+plotH) - float64(plotH)*float64(i)/4
			label := fmt.Sprintf("%.0f", v)
			if c.LinePct {
				label = fmt.Sprintf("%.0f%%", v*100)
			}
			fmt.Fprintf(&b, `<text x="%d" y="%.1f" %s font-size="11" fill="#e15759">%s</text>`,
				marginL+plotW+8, y+4, fontFace, label)
		}
		fmt.Fprintf(&b, `<text x="%d" y="%d" %s font-size="12" fill="#e15759">%s</text>`,
			marginL+plotW-80, marginT-14, fontFace, c.LineLabel)
	}
	b.WriteString("</svg>")
	return b.String()
}

// LineSeries is one named step/line series.
type LineSeries struct {
	Name string
	X    []float64
	Y    []float64
	Step bool // draw as step function (cumulative curves)
}

// LineChart draws multiple series over a shared axis (Fig. 5 style).
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	Series []LineSeries
}

// Render produces the SVG document, or "" with no data.
func (c LineChart) Render() string {
	if len(c.Series) == 0 {
		return ""
	}
	maxX, maxY := 0.0, 0.0
	for _, s := range c.Series {
		for i := range s.X {
			if s.X[i] > maxX {
				maxX = s.X[i]
			}
			if s.Y[i] > maxY {
				maxY = s.Y[i]
			}
		}
	}
	if maxX <= 0 || maxY <= 0 {
		return ""
	}
	maxX, maxY = niceCeil(maxX), niceCeil(maxY)

	var b strings.Builder
	header(&b, c.Title)
	axes(&b, c.YLabel, maxY, true)
	// X ticks.
	for i := 0; i <= 5; i++ {
		v := maxX * float64(i) / 5
		x := float64(marginL) + float64(plotW)*float64(i)/5
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" %s font-size="11" text-anchor="middle">%.0f</text>`,
			x, marginT+plotH+18, fontFace, v)
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" %s font-size="12" text-anchor="middle">%s</text>`,
		marginL+plotW/2, height-16, fontFace, c.XLabel)

	for si, s := range c.Series {
		color := seriesColors[si%len(seriesColors)]
		var pts []string
		prevY := float64(marginT + plotH)
		for i := range s.X {
			x := float64(marginL) + s.X[i]/maxX*float64(plotW)
			y := float64(marginT+plotH) - s.Y[i]/maxY*float64(plotH)
			if s.Step && len(pts) > 0 {
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", x, prevY))
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x, y))
			prevY = y
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`,
			strings.Join(pts, " "), color)
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`,
			marginL+10+si*170, marginT-24, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" %s font-size="12">%s</text>`,
			marginL+26+si*170, marginT-14, fontFace, s.Name)
	}
	b.WriteString("</svg>")
	return b.String()
}

func header(b *strings.Builder, title string) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		width, height, width, height)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`, width, height)
	fmt.Fprintf(b, `<text x="%d" y="20" %s font-size="15" font-weight="bold">%s</text>`,
		marginL, fontFace, title)
}

// axes draws the frame, left-axis ticks and gridlines.
func axes(b *strings.Builder, yLabel string, maxY float64, xContinuous bool) {
	fmt.Fprintf(b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#999"/>`,
		marginL, marginT, plotW, plotH)
	for i := 0; i <= 4; i++ {
		v := maxY * float64(i) / 4
		y := float64(marginT+plotH) - float64(plotH)*float64(i)/4
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#e5e5e5"/>`,
			marginL, y, marginL+plotW, y)
		fmt.Fprintf(b, `<text x="%d" y="%.1f" %s font-size="11" text-anchor="end">%s</text>`,
			marginL-6, y+4, fontFace, fmtTick(v))
	}
	fmt.Fprintf(b, `<text x="18" y="%d" %s font-size="12" transform="rotate(-90 18 %d)">%s</text>`,
		marginT+plotH/2, fontFace, marginT+plotH/2, yLabel)
}

func fmtTick(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	}
	return fmt.Sprintf("%.0f", v)
}

// niceCeil rounds up to 1/2/5 × 10^k for clean axis maxima.
func niceCeil(v float64) float64 {
	if v <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(v)))
	for _, m := range []float64{1, 2, 5, 10} {
		if v <= m*mag {
			return m * mag
		}
	}
	return 10 * mag
}
