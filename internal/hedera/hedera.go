// Package hedera implements a Hedera-like reactive flow scheduler
// (Al-Fares et al., NSDI 2010), the intermediate point between load-unaware
// ECMP and predictive Pythia that the paper discusses in §II: it detects
// elephant flows from periodically polled switch statistics and re-places
// them on lightly loaded paths with a global-first-fit heuristic.
//
// Its structural handicaps versus Pythia, which the paper calls out, are
// reproduced: it is reactive (a flow must run — on its ECMP-chosen path —
// long enough to be classified before it can be moved), it knows only
// observed rates rather than application-declared transfer sizes, and it is
// blind to flow criticality (which transfer gates the shuffle barrier).
package hedera

import (
	"sort"

	"pythia/internal/ecmp"
	"pythia/internal/netsim"
	"pythia/internal/openflow"
	"pythia/internal/sim"
	"pythia/internal/topology"
)

// Config tunes the scheduler.
type Config struct {
	// PollInterval is the statistics collection period (Hedera's control
	// loop ran at 5 s in the original paper).
	PollInterval sim.Duration
	// ElephantFraction classifies a flow as an elephant when its current
	// rate exceeds this fraction of its bottleneck link capacity
	// (Hedera used 10% of NIC rate).
	ElephantFraction float64
	// K is the number of candidate paths per pair.
	K int
	// MoveMarginBps: only move an elephant if the best alternative path
	// offers at least this much more spare bandwidth (hysteresis).
	MoveMarginBps float64
	// InstallLatency per rule when applying a move.
	InstallLatency sim.Duration
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.PollInterval == 0 {
		c.PollInterval = 5 * sim.Second
	}
	if c.ElephantFraction == 0 {
		c.ElephantFraction = 0.10
	}
	if c.K == 0 {
		c.K = 4
	}
	if c.MoveMarginBps == 0 {
		c.MoveMarginBps = 50e6 // 50 Mbps
	}
	if c.InstallLatency == 0 {
		c.InstallLatency = openflow.DefaultInstallLatency
	}
	return c
}

// Scheduler is the reactive controller. New flows enter on ECMP (use the
// embedded allocator as the cluster's PathResolver); the control loop then
// periodically sweeps for elephants and reroutes them.
type Scheduler struct {
	*ecmp.Allocator // initial placement: plain ECMP

	eng *sim.Engine
	net *netsim.Network
	g   *topology.Graph
	cfg Config

	// planned holds flows with a pending (latency-delayed) move so the
	// sweep does not schedule the same move twice.
	planned map[netsim.FlowID]bool

	// Metrics.
	Sweeps    int
	Elephants int
	Moves     int
}

// New builds the scheduler and arms its control loop.
func New(eng *sim.Engine, net *netsim.Network, seed uint64, cfg Config) *Scheduler {
	cfg = cfg.Defaults()
	s := &Scheduler{
		Allocator: ecmp.New(net.Graph(), cfg.K, seed),
		eng:       eng,
		net:       net,
		g:         net.Graph(),
		cfg:       cfg,
		planned:   make(map[netsim.FlowID]bool),
	}
	eng.AfterDaemon(cfg.PollInterval, s.sweep)
	// Fault plane: re-hash stranded shuffle flows immediately on topology
	// events rather than waiting for the next sweep — Hedera still pays
	// its reactive poll before *optimizing* placement, but basic
	// connectivity recovery is the fabric's ECMP behavior, not the
	// scheduler's.
	net.SubscribeTopology(func(netsim.TopoEvent) {
		s.RescueStranded(net, netsim.Shuffle)
	})
	return s
}

// sweep is one control-loop iteration: classify, then greedily re-place.
func (s *Scheduler) sweep() {
	s.Sweeps++
	defer s.eng.AfterDaemon(s.cfg.PollInterval, s.sweep)

	elephants := s.collectElephants()
	if len(elephants) == 0 {
		return
	}
	// Global first fit over elephants in descending rate order.
	sort.Slice(elephants, func(i, j int) bool {
		if elephants[i].Rate() != elephants[j].Rate() {
			return elephants[i].Rate() > elephants[j].Rate()
		}
		return elephants[i].ID < elephants[j].ID
	})
	for _, f := range elephants {
		s.maybeMove(f)
	}
}

// collectElephants scans active shuffle flows whose rate exceeds the
// threshold fraction of their bottleneck capacity, or which are being
// starved on a congested path while capacity exists elsewhere (rate far
// below fair NIC share).
func (s *Scheduler) collectElephants() []*netsim.Flow {
	seen := map[netsim.FlowID]*netsim.Flow{}
	for _, l := range s.g.Links() {
		s.net.ForEachOn(l.ID, func(f *netsim.Flow) {
			if f.Kind != netsim.Shuffle || s.planned[f.ID] {
				return
			}
			seen[f.ID] = f
		})
	}
	var out []*netsim.Flow
	for _, f := range seen {
		bottleneck := s.bottleneckCap(f.Path)
		if bottleneck <= 0 {
			continue
		}
		big := f.Rate() >= s.cfg.ElephantFraction*bottleneck
		// A flow with large outstanding demand crawling below the
		// elephant rate is exactly the case Hedera exists for: its
		// natural demand (what it would consume unimpeded) exceeds the
		// threshold even though its observed rate does not.
		starvedElephant := f.Remaining() >= s.cfg.ElephantFraction*bottleneck &&
			f.Rate() < s.cfg.ElephantFraction*bottleneck
		if big || starvedElephant {
			out = append(out, f)
		}
	}
	s.Elephants += len(out)
	return out
}

func (s *Scheduler) bottleneckCap(p topology.Path) float64 {
	capBps := 0.0
	for i, l := range p.Links {
		c := s.g.Link(l).CapacityBps
		if i == 0 || c < capBps {
			capBps = c
		}
	}
	return capBps
}

// maybeMove re-places one elephant if a strictly better path exists.
func (s *Scheduler) maybeMove(f *netsim.Flow) {
	paths := s.Paths(f.Tuple.SrcHost, f.Tuple.DstHost)
	if len(paths) < 2 {
		return
	}
	curSpare := s.pathSpare(f.Path, f)
	best := f.Path
	bestSpare := curSpare
	for _, cand := range paths {
		if cand.Equal(f.Path) {
			continue
		}
		if sp := s.pathSpare(cand, f); sp > bestSpare {
			best, bestSpare = cand, sp
		}
	}
	if best.Equal(f.Path) || bestSpare-curSpare < s.cfg.MoveMarginBps {
		return
	}
	// Apply after rule-install latency (one rule per switch hop).
	switches := 0
	for _, l := range best.Links {
		if s.g.Node(s.g.Link(l).From).Kind == topology.Switch {
			switches++
		}
	}
	delay := sim.Duration(float64(s.cfg.InstallLatency) * float64(switches))
	s.planned[f.ID] = true
	s.Moves++
	s.eng.After(delay, func() {
		delete(s.planned, f.ID)
		if f.Done() {
			return
		}
		if err := best.Valid(s.g); err != nil {
			return // topology changed under us
		}
		s.net.Reroute(f, best)
	})
}

// pathSpare estimates a path's spare capacity for this flow: min over links
// of (available + the flow's own current usage if it is already there).
func (s *Scheduler) pathSpare(p topology.Path, f *netsim.Flow) float64 {
	spare := 0.0
	for i, l := range p.Links {
		avail := s.net.AvailableBps(l)
		// If f already crosses l, its own allocation would be freed.
		for _, fl := range f.Path.Links {
			if fl == l {
				avail += f.Rate()
				break
			}
		}
		if i == 0 || avail < spare {
			spare = avail
		}
	}
	return spare
}
