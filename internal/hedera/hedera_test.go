package hedera

import (
	"math"
	"testing"

	"pythia/internal/ecmp"
	"pythia/internal/hadoop"
	"pythia/internal/netsim"
	"pythia/internal/sim"
	"pythia/internal/topology"
	"pythia/internal/workload"
)

func rig(cfg Config) (*sim.Engine, *netsim.Network, *Scheduler, []topology.NodeID, []topology.LinkID) {
	eng := sim.NewEngine()
	g, hosts, trunks := topology.TwoRack(5, 2, topology.Gbps)
	net := netsim.New(eng, g)
	s := New(eng, net, 1, cfg)
	return eng, net, s, hosts, trunks
}

func tup(src, dst topology.NodeID, sp, dp uint16) netsim.FiveTuple {
	return netsim.FiveTuple{SrcHost: src, DstHost: dst, SrcPort: sp, DstPort: dp, Protocol: 6}
}

func TestDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.PollInterval != 5 || c.ElephantFraction != 0.10 || c.K != 4 {
		t.Fatalf("defaults: %+v", c)
	}
}

func TestMovesElephantOffCongestedTrunk(t *testing.T) {
	eng, net, s, hosts, trunks := rig(Config{PollInterval: 1})
	g := net.Graph()
	// Load trunk0 at 95%; leave trunk1 clean.
	net.SetBackground(trunks[0], 0.95*topology.Gbps)

	// Force an elephant onto the congested trunk (as a bad ECMP hash
	// would).
	var badPath topology.Path
	for _, p := range g.KShortestPaths(hosts[0], hosts[5], 2) {
		for _, l := range p.Links {
			if l == trunks[0] {
				badPath = p
			}
		}
	}
	if badPath.Hops() == 0 {
		t.Fatal("no path over trunk0")
	}
	var done sim.Time
	net.StartFlow(tup(hosts[0], hosts[5], 1, 1), netsim.Shuffle, badPath, 2e9, 0, 0, 0,
		func(f *netsim.Flow) { done = f.Finished() })
	eng.Run()
	// On the congested trunk alone: 2e9 bits at 50 Mbps = 40 s. Hedera
	// must have moved it to the clean trunk within ~a poll interval:
	// ~1 s detection + ~2 s transfer.
	if float64(done) > 10 {
		t.Fatalf("elephant finished at %v; Hedera did not rescue it", done)
	}
	if s.Moves == 0 {
		t.Fatal("no moves recorded")
	}
}

func TestLeavesMiceAlone(t *testing.T) {
	eng, net, s, hosts, trunks := rig(Config{})
	net.SetBackground(trunks[0], 0.5*topology.Gbps)
	g := net.Graph()
	paths := g.KShortestPaths(hosts[0], hosts[5], 2)
	// A mouse: 1 Mbit — gone long before the first sweep.
	net.StartFlow(tup(hosts[0], hosts[5], 1, 1), netsim.Shuffle, paths[0], 1e6, 0, 0, 0, nil)
	eng.Run()
	if s.Moves != 0 {
		t.Fatalf("moved %d mice", s.Moves)
	}
}

func TestHysteresisPreventsFlapping(t *testing.T) {
	eng, net, s, hosts, _ := rig(Config{PollInterval: 1, MoveMarginBps: 2 * topology.Gbps})
	g := net.Graph()
	paths := g.KShortestPaths(hosts[0], hosts[5], 2)
	// Margin impossible to satisfy: no move should ever fire.
	net.StartFlow(tup(hosts[0], hosts[5], 1, 1), netsim.Shuffle, paths[0], 5e9, 0, 0, 0, nil)
	eng.Run()
	if s.Moves != 0 {
		t.Fatalf("moved despite impossible margin: %d", s.Moves)
	}
}

func TestSchedulerActsAsECMPResolver(t *testing.T) {
	_, _, s, hosts, _ := rig(Config{})
	p, err := s.ResolveShuffle(tup(hosts[0], hosts[5], 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if p.Src != hosts[0] || p.Dst != hosts[5] {
		t.Fatal("bad resolution")
	}
}

func TestSweepsCount(t *testing.T) {
	eng, net, s, hosts, _ := rig(Config{PollInterval: 1})
	g := net.Graph()
	paths := g.KShortestPaths(hosts[0], hosts[5], 2)
	net.StartFlow(tup(hosts[0], hosts[5], 1, 1), netsim.Shuffle, paths[0], 5e9, 0, 0, 0, nil)
	eng.Run()
	if s.Sweeps == 0 {
		t.Fatal("control loop never ran")
	}
}

func TestHederaBetweenECMPAndOptimal(t *testing.T) {
	// On the asymmetric-load scenario, Hedera should beat plain ECMP
	// (it rescues collided elephants) for a sort-like job.
	bg := func(net *netsim.Network, trunks []topology.LinkID) {
		g := net.Graph()
		loads := []float64{0.95, 0.30}
		for i, tr := range trunks {
			net.SetBackground(tr, loads[i]*topology.Gbps)
			if r, ok := g.Reverse(tr); ok {
				net.SetBackground(r, loads[i]*topology.Gbps)
			}
		}
	}
	run := func(useHedera bool) float64 {
		eng := sim.NewEngine()
		g, hosts, trunks := topology.TwoRack(5, 2, topology.Gbps)
		net := netsim.New(eng, g)
		bg(net, trunks)
		var resolver hadoop.PathResolver
		if useHedera {
			resolver = New(eng, net, 1, Config{})
		} else {
			resolver = ecmp.New(g, 2, 1)
		}
		cl := hadoop.NewCluster(eng, net, hosts, resolver, hadoop.Config{})
		j, err := cl.Submit(workload.Sort(4*workload.GB, 8, 42))
		if err != nil {
			t.Fatal(err)
		}
		eng.Run()
		if !j.Done {
			t.Fatal("job did not finish")
		}
		return float64(j.Duration())
	}
	ecmpTime := run(false)
	hederaTime := run(true)
	if hederaTime >= ecmpTime {
		t.Fatalf("Hedera (%.1fs) not faster than ECMP (%.1fs)", hederaTime, ecmpTime)
	}
	t.Logf("ecmp=%.1fs hedera=%.1fs", ecmpTime, hederaTime)
}

func TestMoveSkipsDoneFlows(t *testing.T) {
	// A flow that completes during the install latency must not panic.
	eng, net, _, hosts, trunks := rig(Config{PollInterval: 1, InstallLatency: 0.5 * sim.Second})
	net.SetBackground(trunks[0], 0.6*topology.Gbps)
	g := net.Graph()
	var badPath topology.Path
	for _, p := range g.KShortestPaths(hosts[0], hosts[5], 2) {
		for _, l := range p.Links {
			if l == trunks[0] {
				badPath = p
			}
		}
	}
	// Elephant-classified but finishes at ~1.25s, within install latency
	// of the first sweep at 1s.
	net.StartFlow(tup(hosts[0], hosts[5], 1, 1), netsim.Shuffle, badPath, 0.5e9, 0, 0, 0, nil)
	eng.Run() // must not panic
}

func TestSpareAccountsOwnUsage(t *testing.T) {
	// A lone elephant saturating the clean trunk must not be "moved" to
	// the other trunk just because its own usage makes its path look
	// busy.
	eng, net, s, hosts, _ := rig(Config{PollInterval: 1})
	g := net.Graph()
	paths := g.KShortestPaths(hosts[0], hosts[5], 2)
	var done sim.Time
	net.StartFlow(tup(hosts[0], hosts[5], 1, 1), netsim.Shuffle, paths[0], 8e9, 0, 0, 0,
		func(f *netsim.Flow) { done = f.Finished() })
	eng.Run()
	if s.Moves != 0 {
		t.Fatalf("pointless move of a lone flow: %d moves", s.Moves)
	}
	if math.Abs(float64(done)-8) > 0.01 {
		t.Fatalf("lone elephant took %v, want 8s", done)
	}
}

func TestHederaOnLeafSpine(t *testing.T) {
	// The reactive scheduler must handle fabrics with more than two
	// equal-cost paths: elephants move to the emptiest spine.
	eng := sim.NewEngine()
	g, hosts := topology.LeafSpine(2, 3, 4, topology.Gbps)
	net := netsim.New(eng, g)
	s := New(eng, net, 1, Config{PollInterval: 1})
	// Load two of the three spine uplinks of leaf0 heavily.
	loaded := 0
	for _, l := range g.Links() {
		from, to := g.Node(l.From), g.Node(l.To)
		if from.Name == "leaf0" && to.Kind == topology.Switch && loaded < 2 {
			net.SetBackground(l.ID, 0.95*topology.Gbps)
			if r, ok := g.Reverse(l.ID); ok {
				net.SetBackground(r, 0.95*topology.Gbps)
			}
			loaded++
		}
	}
	if loaded != 2 {
		t.Fatalf("loaded %d uplinks", loaded)
	}
	// An elephant initially ECMP-placed lands somewhere; wherever it is,
	// Hedera must ensure it completes near the clean spine's rate.
	var done sim.Time
	p, err := s.ResolveShuffle(tup(hosts[0], hosts[7], 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	net.StartFlow(tup(hosts[0], hosts[7], 1, 1), netsim.Shuffle, p, 4e9, 0, 0, 0,
		func(f *netsim.Flow) { done = f.Finished() })
	eng.Run()
	// Clean spine: 4 Gbit at 1 Gbps = 4 s; allow detection+move slack.
	if float64(done) > 8 {
		t.Fatalf("elephant took %v on a fabric with a clean spine", done)
	}
}
