package topology

import "fmt"

// Gbps converts gigabits/second to bits/second.
const Gbps = 1e9

// TwoRack builds the paper's testbed topology: two racks of hostsPerRack
// servers, each rack with a ToR switch, and trunkLinks parallel cables
// between the two ToRs. All links run at linkBps. The paper used 5 servers
// per rack, 1 Gbps links, and 2 inter-rack trunks.
//
// Returned alongside the graph are the host IDs (rack 0 first) and the
// forward-direction trunk link IDs.
func TwoRack(hostsPerRack, trunkLinks int, linkBps float64) (*Graph, []NodeID, []LinkID) {
	if hostsPerRack <= 0 || trunkLinks <= 0 {
		panic("topology: TwoRack needs positive hosts and trunks")
	}
	g := NewGraph()
	tor0 := g.AddNode(Switch, "tor0", 0)
	tor1 := g.AddNode(Switch, "tor1", 1)
	var hosts []NodeID
	for r, tor := range []NodeID{tor0, tor1} {
		for i := 0; i < hostsPerRack; i++ {
			h := g.AddNode(Host, fmt.Sprintf("rack%d-host%d", r, i), r)
			g.AddDuplex(h, tor, linkBps, fmt.Sprintf("edge-r%dh%d", r, i))
			hosts = append(hosts, h)
		}
	}
	var trunks []LinkID
	for i := 0; i < trunkLinks; i++ {
		f, _ := g.AddDuplex(tor0, tor1, linkBps, fmt.Sprintf("trunk%d", i))
		trunks = append(trunks, f)
	}
	return g, hosts, trunks
}

// LeafSpine builds a two-tier Clos: leaves racks each with hostsPerRack
// servers, spines spine switches, every leaf connected to every spine at
// linkBps. This is the "larger-scale future SDN setup" shape the paper
// discusses for flow aggregation, and gives spines equal-cost paths between
// any inter-rack host pair.
func LeafSpine(leaves, spines, hostsPerRack int, linkBps float64) (*Graph, []NodeID) {
	if leaves <= 0 || spines <= 0 || hostsPerRack <= 0 {
		panic("topology: LeafSpine needs positive dimensions")
	}
	g := NewGraph()
	leafIDs := make([]NodeID, leaves)
	for l := 0; l < leaves; l++ {
		leafIDs[l] = g.AddNode(Switch, fmt.Sprintf("leaf%d", l), l)
	}
	spineIDs := make([]NodeID, spines)
	for s := 0; s < spines; s++ {
		spineIDs[s] = g.AddNode(Switch, fmt.Sprintf("spine%d", s), -1)
	}
	var hosts []NodeID
	for l := 0; l < leaves; l++ {
		for i := 0; i < hostsPerRack; i++ {
			h := g.AddNode(Host, fmt.Sprintf("rack%d-host%d", l, i), l)
			g.AddDuplex(h, leafIDs[l], linkBps, fmt.Sprintf("edge-l%dh%d", l, i))
			hosts = append(hosts, h)
		}
	}
	for l := 0; l < leaves; l++ {
		for s := 0; s < spines; s++ {
			g.AddDuplex(leafIDs[l], spineIDs[s], linkBps, fmt.Sprintf("up-l%ds%d", l, s))
		}
	}
	return g, hosts
}

// FatTree builds a k-ary fat-tree (k even): (k/2)² core switches, k pods of
// k/2 aggregation and k/2 edge switches, and hostsPerEdge hosts per edge
// switch (the canonical construction uses k/2). All links at linkBps.
func FatTree(k, hostsPerEdge int, linkBps float64) (*Graph, []NodeID) {
	if k <= 0 || k%2 != 0 {
		panic("topology: FatTree arity must be positive and even")
	}
	if hostsPerEdge <= 0 {
		panic("topology: FatTree needs positive hosts per edge")
	}
	g := NewGraph()
	half := k / 2
	core := make([]NodeID, half*half)
	for i := range core {
		core[i] = g.AddNode(Switch, fmt.Sprintf("core%d", i), -1)
	}
	var hosts []NodeID
	for p := 0; p < k; p++ {
		aggs := make([]NodeID, half)
		edges := make([]NodeID, half)
		for a := 0; a < half; a++ {
			aggs[a] = g.AddNode(Switch, fmt.Sprintf("pod%d-agg%d", p, a), p)
		}
		for e := 0; e < half; e++ {
			edges[e] = g.AddNode(Switch, fmt.Sprintf("pod%d-edge%d", p, e), p)
		}
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				g.AddDuplex(edges[e], aggs[a], linkBps, fmt.Sprintf("p%de%da%d", p, e, a))
			}
			for h := 0; h < hostsPerEdge; h++ {
				hn := g.AddNode(Host, fmt.Sprintf("pod%d-edge%d-host%d", p, e, h), p)
				g.AddDuplex(hn, edges[e], linkBps, fmt.Sprintf("p%de%dh%d", p, e, h))
				hosts = append(hosts, hn)
			}
		}
		// Aggregation a connects to cores [a*half, (a+1)*half).
		for a := 0; a < half; a++ {
			for c := 0; c < half; c++ {
				g.AddDuplex(aggs[a], core[a*half+c], linkBps, fmt.Sprintf("p%da%dc%d", p, a, a*half+c))
			}
		}
	}
	return g, hosts
}
