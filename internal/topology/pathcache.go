package topology

// PathCache memoizes KShortestPaths per (src, dst) at a fixed k and repairs
// itself incrementally on topology change instead of flushing wholesale.
//
// Correctness rests on two invalidation rules, both consequences of Yen's
// output being exactly the k pathLess-minimal loop-free paths over the
// currently-up link set:
//
//   - Link goes DOWN: only entries whose cached paths traverse the link can
//     change. An untouched entry's paths survive, and removing other paths
//     from the universe cannot promote a new path into the minimal set. If
//     the entry held fewer than k paths it was the complete loop-free set,
//     and every removed path traverses the downed link — so it would have
//     been caught by the traversal test.
//
//   - Link comes UP: only entries whose compute-time down-snapshot contains
//     the link can change. For every other live entry the link was up at
//     compute time (or the entry was invalidated when it came up earlier),
//     so every path the revived link enables was already in the entry's
//     compute universe and already lost to the cached minimal set.
//
// Inductively, every live entry always equals the fresh computation at the
// current graph state (pathcache_test.go storms this against fresh Yen runs).
// Structural growth (AddNode/AddLink) flushes the cache entirely; state flips
// stream through the Graph's transition journal, and a cache that falls
// behind a capped journal also flushes fully.
type PathCache struct {
	g *Graph
	k int

	entries map[pcKey]*pathEntry
	// traversedBy[l] lists entries whose cached paths use link l (down-rule
	// index); snapshotAt[l] lists entries computed while l was down (up-rule
	// index). Both are cleared as their link's transitions are consumed.
	traversedBy [][]*pathEntry
	snapshotAt  [][]*pathEntry

	structVer  uint64
	journalPos uint64 // absolute index of the next unconsumed transition
	rev        uint64 // bumped on any invalidation; derived caches key off it

	// Telemetry for tests and benchmarks.
	Hits, Misses, Invalidated, Flushes uint64
}

type pcKey struct{ src, dst NodeID }

type pathEntry struct {
	key   pcKey
	paths []Path
	dead  bool
}

// NewPathCache returns an empty cache over g at the given k.
func NewPathCache(g *Graph, k int) *PathCache {
	if k <= 0 {
		panic("topology: PathCache k must be positive")
	}
	c := &PathCache{g: g, k: k}
	c.flush()
	return c
}

// K reports the cache's path count per pair.
func (c *PathCache) K() int { return c.k }

// Rev is bumped whenever any entry is invalidated or the cache flushes.
// Consumers that derive state from returned paths (e.g. ECMP's equal-cost
// subsets) can memoize against it.
func (c *PathCache) Rev() uint64 { return c.rev }

// Paths returns the k-shortest paths for the pair, computing and caching on
// miss. The returned slice is shared: callers must not mutate it.
func (c *PathCache) Paths(src, dst NodeID) []Path {
	c.sync()
	key := pcKey{src, dst}
	if e, ok := c.entries[key]; ok {
		c.Hits++
		return e.paths
	}
	c.Misses++
	e := &pathEntry{key: key, paths: c.g.KShortestPaths(src, dst, c.k)}
	c.entries[key] = e
	for _, p := range e.paths {
		for _, l := range p.Links {
			c.traversedBy[l] = append(c.traversedBy[l], e)
		}
	}
	for l, down := range c.g.down {
		if down {
			c.snapshotAt[l] = append(c.snapshotAt[l], e)
		}
	}
	return e.paths
}

// sync consumes pending topology changes, invalidating the minimal set of
// entries.
func (c *PathCache) sync() {
	g := c.g
	if c.structVer != g.structVer || c.journalPos < g.journalHead {
		// Structure changed, or the journal dropped transitions we have not
		// consumed: targeted repair is no longer sound.
		c.flush()
		return
	}
	end := g.journalEnd()
	for ; c.journalPos < end; c.journalPos++ {
		t := g.journal[c.journalPos-g.journalHead]
		// On a down flip no live entry was computed while the link was down
		// (those died when it last came up); on an up flip no live entry
		// traverses it (those died when it went down). So both index lists
		// together hold exactly the affected entries, and both empty out.
		c.killAll(c.traversedBy[t.link])
		c.killAll(c.snapshotAt[t.link])
		c.traversedBy[t.link] = c.traversedBy[t.link][:0]
		c.snapshotAt[t.link] = c.snapshotAt[t.link][:0]
	}
}

func (c *PathCache) killAll(es []*pathEntry) {
	for _, e := range es {
		if e.dead {
			continue
		}
		e.dead = true
		delete(c.entries, e.key)
		c.Invalidated++
		c.rev++
	}
}

func (c *PathCache) flush() {
	c.entries = make(map[pcKey]*pathEntry)
	nl := c.g.NumLinks()
	c.traversedBy = make([][]*pathEntry, nl)
	c.snapshotAt = make([][]*pathEntry, nl)
	c.structVer = c.g.structVer
	c.journalPos = c.g.journalEnd()
	c.rev++
	c.Flushes++
}
