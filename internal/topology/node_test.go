package topology

import "testing"

// TestSetNodeUp: a down switch takes every incident link down with it, and
// recovery restores only links that are administratively up.
func TestSetNodeUp(t *testing.T) {
	g := NewGraph()
	h := g.AddNode(Host, "h0", 0)
	s1 := g.AddNode(Switch, "s1", 0)
	s2 := g.AddNode(Switch, "s2", 1)
	hf, hr := g.AddDuplex(h, s1, Gbps, "host")
	tf, tr := g.AddDuplex(s1, s2, Gbps, "trunk")

	if !g.NodeUp(s1) {
		t.Fatal("fresh node reports down")
	}
	v0 := g.Version()
	g.SetNodeUp(s1, false)
	if g.Version() == v0 {
		t.Fatal("node failure did not bump the version")
	}
	for _, l := range []LinkID{hf, hr, tf, tr} {
		if g.LinkUp(l) {
			t.Fatalf("link %d still up with endpoint switch down", l)
		}
		if !g.LinkAdminUp(l) {
			t.Fatalf("link %d admin state corrupted by node failure", l)
		}
	}

	// Fail the trunk explicitly while the switch is down; recovery of the
	// switch must not resurrect it.
	g.SetLinkUp(tf, false)
	g.SetNodeUp(s1, true)
	if !g.LinkUp(hf) || !g.LinkUp(hr) || !g.LinkUp(tr) {
		t.Fatal("switch recovery did not restore admin-up links")
	}
	if g.LinkUp(tf) {
		t.Fatal("switch recovery resurrected an admin-down link")
	}
	g.SetLinkUp(tf, true)
	if !g.LinkUp(tf) {
		t.Fatal("link recovery failed")
	}
}

// TestSetNodeUpNoOpAndRouting: redundant transitions do not bump the
// version, and shortest paths route around a down switch.
func TestSetNodeUpNoOpAndRouting(t *testing.T) {
	g, hosts := LeafSpine(2, 2, 1, Gbps)
	spines := []NodeID{}
	for _, n := range g.Nodes() {
		if n.Kind == Switch && n.Rack < 0 {
			spines = append(spines, n.ID)
		}
	}
	if len(spines) != 2 {
		t.Fatalf("expected 2 spines, got %d", len(spines))
	}
	g.SetNodeUp(spines[0], false)
	v := g.Version()
	g.SetNodeUp(spines[0], false) // no-op
	if g.Version() != v {
		t.Fatal("redundant SetNodeUp bumped the version")
	}
	p, ok := g.ShortestPath(hosts[0], hosts[1], nil, nil)
	if !ok {
		t.Fatal("no path despite a surviving spine")
	}
	for _, l := range p.Links {
		lk := g.Link(l)
		if lk.From == spines[0] || lk.To == spines[0] {
			t.Fatal("path routed through the failed spine")
		}
	}
	// Admin-down link state survives a node bounce in the SetLinkUp
	// no-version-change case: admin change under a node-down link must not
	// bump the version (effective state unchanged).
	var inc LinkID = -1
	for _, l := range g.Links() {
		if l.From == spines[1] || l.To == spines[1] {
			inc = l.ID
			break
		}
	}
	g.SetNodeUp(spines[1], false)
	v = g.Version()
	g.SetLinkUp(inc, false) // effectively down already
	if g.Version() != v {
		t.Fatal("admin change with unchanged effective state bumped the version")
	}
}
