package topology

import (
	"fmt"
	"sort"
	"strings"
)

// ToDOT renders the topology as a Graphviz document: hosts as boxes grouped
// into rack clusters, switches as ellipses, one undirected edge per duplex
// cable (capacity as the label), dashed red for failed links. Render with
// `dot -Tsvg` or any Graphviz viewer.
func ToDOT(g *Graph) string {
	var b strings.Builder
	b.WriteString("graph topology {\n")
	b.WriteString("  rankdir=BT;\n  node [fontname=\"Helvetica\"];\n")

	// Group hosts (and their rack's switches) into cluster subgraphs.
	racks := map[int][]Node{}
	var rackIDs []int
	var coreSwitches []Node
	for _, n := range g.Nodes() {
		if n.Rack < 0 {
			coreSwitches = append(coreSwitches, n)
			continue
		}
		if _, seen := racks[n.Rack]; !seen {
			rackIDs = append(rackIDs, n.Rack)
		}
		racks[n.Rack] = append(racks[n.Rack], n)
	}
	sort.Ints(rackIDs)
	for _, r := range rackIDs {
		fmt.Fprintf(&b, "  subgraph cluster_rack%d {\n    label=\"rack %d\";\n", r, r)
		for _, n := range racks[r] {
			b.WriteString("    " + dotNode(n))
		}
		b.WriteString("  }\n")
	}
	for _, n := range coreSwitches {
		b.WriteString("  " + dotNode(n))
	}

	// One edge per duplex pair; singly-added links get a directed-style
	// annotation.
	drawn := map[LinkID]bool{}
	for _, l := range g.Links() {
		if drawn[l.ID] {
			continue
		}
		drawn[l.ID] = true
		if rev, ok := g.Reverse(l.ID); ok {
			drawn[rev] = true
		}
		style := ""
		if !g.LinkUp(l.ID) {
			style = ", style=dashed, color=red"
		}
		fmt.Fprintf(&b, "  n%d -- n%d [label=\"%s\"%s];\n",
			l.From, l.To, capLabel(l.CapacityBps), style)
	}
	b.WriteString("}\n")
	return b.String()
}

func dotNode(n Node) string {
	shape := "box"
	if n.Kind == Switch {
		shape = "ellipse"
	}
	return fmt.Sprintf("n%d [label=\"%s\", shape=%s];\n", n.ID, n.Name, shape)
}

func capLabel(bps float64) string {
	switch {
	case bps >= 1e9:
		return fmt.Sprintf("%.0fG", bps/1e9)
	case bps >= 1e6:
		return fmt.Sprintf("%.0fM", bps/1e6)
	}
	return fmt.Sprintf("%.0f", bps)
}
