package topology_test

import (
	"fmt"

	"pythia/internal/topology"
)

// Build the paper's testbed and inspect the inter-rack path diversity.
func ExampleTwoRack() {
	g, hosts, trunks := topology.TwoRack(5, 2, topology.Gbps)
	paths := g.KShortestPaths(hosts[0], hosts[5], 4)
	fmt.Printf("%d hosts, %d trunks, %d inter-rack paths of %d hops\n",
		len(hosts), len(trunks), len(paths), paths[0].Hops())
	// Output:
	// 10 hosts, 2 trunks, 2 inter-rack paths of 3 hops
}

// Failure injection reroutes around the dead link.
func ExampleGraph_SetLinkUp() {
	g, hosts, trunks := topology.TwoRack(5, 2, topology.Gbps)
	g.SetLinkUp(trunks[0], false)
	paths := g.KShortestPaths(hosts[0], hosts[5], 4)
	fmt.Printf("paths after failing one trunk: %d\n", len(paths))
	// Output:
	// paths after failing one trunk: 1
}

// Leaf-spine fabrics offer one equal-cost path per spine.
func ExampleLeafSpine() {
	g, hosts := topology.LeafSpine(4, 3, 5, topology.Gbps)
	paths := g.KShortestPaths(hosts[0], hosts[6], 3)
	fmt.Printf("%d hosts, shortest inter-rack paths: %d x %d hops\n",
		len(hosts), len(paths), paths[0].Hops())
	// Output:
	// 20 hosts, shortest inter-rack paths: 3 x 4 hops
}
