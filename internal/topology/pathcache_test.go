package topology

import (
	"testing"

	"pythia/internal/stats"
)

func pathsEqual(a, b []Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// TestPathCacheEquivalenceUnderFaultStorm drives a randomized storm of link
// and switch up/down flips interleaved with path queries, and after every
// batch cross-checks the cache against a fresh KShortestPaths run for every
// queried pair. This is the soundness proof for the targeted invalidation
// rules (traversal on link-down, compute-time down-snapshot on link-up).
func TestPathCacheEquivalenceUnderFaultStorm(t *testing.T) {
	for _, k := range []int{1, 2, 4} {
		g, hosts := FatTree(4, 2, 1e9)
		cache := NewPathCache(g, k)
		rng := stats.NewRNG(uint64(1000 + k))
		switches := g.Switches()

		queried := make(map[[2]NodeID]bool)
		query := func() {
			s := hosts[rng.Intn(len(hosts))]
			d := hosts[rng.Intn(len(hosts))]
			if s == d {
				return
			}
			queried[[2]NodeID{s, d}] = true
			got := cache.Paths(s, d)
			want := g.KShortestPaths(s, d, k)
			if !pathsEqual(got, want) {
				t.Fatalf("k=%d: cached paths %d->%d diverged after storm: got %d paths, want %d", k, s, d, len(got), len(want))
			}
		}

		for round := 0; round < 60; round++ {
			// A burst of queries to populate the cache.
			for i := 0; i < 10; i++ {
				query()
			}
			// Random fault/recovery actions.
			for i := 0; i < 3; i++ {
				switch rng.Intn(4) {
				case 0:
					l := LinkID(rng.Intn(g.NumLinks()))
					g.SetLinkUp(l, false)
				case 1:
					l := LinkID(rng.Intn(g.NumLinks()))
					g.SetLinkUp(l, true)
				case 2:
					s := switches[rng.Intn(len(switches))]
					g.SetNodeUp(s, false)
				case 3:
					s := switches[rng.Intn(len(switches))]
					g.SetNodeUp(s, true)
				}
			}
			// Every previously-queried pair must agree with fresh Yen after
			// the cache syncs.
			for pair := range queried {
				got := cache.Paths(pair[0], pair[1])
				want := g.KShortestPaths(pair[0], pair[1], k)
				if !pathsEqual(got, want) {
					t.Fatalf("k=%d round %d: pair %d->%d stale after faults", k, round, pair[0], pair[1])
				}
			}
		}
		if cache.Hits == 0 {
			t.Fatalf("k=%d: cache never hit", k)
		}
		if cache.Invalidated == 0 {
			t.Fatalf("k=%d: storm never exercised targeted invalidation", k)
		}
	}
}

// TestPathCacheTargetedInvalidation shows the point of the cache: failing a
// link in one pod must not evict entries whose paths avoid that link.
func TestPathCacheTargetedInvalidation(t *testing.T) {
	g, hosts := FatTree(4, 2, 1e9)
	cache := NewPathCache(g, 4)
	// Populate every ordered pair among a sample of hosts.
	sample := hosts[:6]
	for _, s := range sample {
		for _, d := range sample {
			if s != d {
				cache.Paths(s, d)
			}
		}
	}
	misses := cache.Misses
	// Fail the first host's access link: only pairs touching that host (or
	// whose cached paths happen to traverse it) should recompute.
	var access LinkID = -1
	for l := 0; l < g.NumLinks(); l++ {
		if g.Link(LinkID(l)).From == sample[0] {
			access = LinkID(l)
			break
		}
	}
	if access < 0 {
		t.Fatal("no access link found")
	}
	g.SetLinkUp(access, false)
	for _, s := range sample {
		for _, d := range sample {
			if s != d {
				cache.Paths(s, d)
			}
		}
	}
	recomputed := cache.Misses - misses
	total := uint64(len(sample) * (len(sample) - 1))
	if recomputed == 0 {
		t.Fatal("failing an access link invalidated nothing")
	}
	if recomputed >= total {
		t.Fatalf("access-link failure recomputed all %d pairs; want targeted invalidation", total)
	}
	if cache.Flushes != 1 {
		t.Fatalf("Flushes = %d, want only the constructor flush", cache.Flushes)
	}
}

// TestPathCacheStructuralFlush verifies growth forces a full flush.
func TestPathCacheStructuralFlush(t *testing.T) {
	g, hosts := TwoRackHostsOnly(t)
	cache := NewPathCache(g, 2)
	cache.Paths(hosts[0], hosts[1])
	n := g.AddNode(Host, "late-host", 0)
	g.AddDuplex(n, g.Switches()[0], 1e9, "late-link")
	cache.Paths(hosts[0], hosts[1])
	if cache.Flushes != 2 {
		t.Fatalf("Flushes = %d, want constructor + structural", cache.Flushes)
	}
	got := cache.Paths(hosts[0], hosts[1])
	want := g.KShortestPaths(hosts[0], hosts[1], 2)
	if !pathsEqual(got, want) {
		t.Fatal("post-flush paths diverge from fresh computation")
	}
}

// TwoRackHostsOnly is a tiny helper topology for structural tests.
func TwoRackHostsOnly(t *testing.T) (*Graph, []NodeID) {
	t.Helper()
	g, hosts, _ := TwoRack(2, 2, 1e9)
	return g, hosts
}

// TestPathCacheJournalOverflow forces the ring past its cap between syncs and
// checks the cache falls back to a full flush with correct results.
func TestPathCacheJournalOverflow(t *testing.T) {
	g, hosts, trunks := TwoRack(2, 2, 1e9)
	cache := NewPathCache(g, 2)
	cache.Paths(hosts[0], hosts[2])
	flushes := cache.Flushes
	for i := 0; i < 2*graphJournalCap+10; i++ {
		g.SetLinkUp(trunks[0], i%2 == 0)
	}
	got := cache.Paths(hosts[0], hosts[2])
	want := g.KShortestPaths(hosts[0], hosts[2], 2)
	if !pathsEqual(got, want) {
		t.Fatal("paths diverge after journal overflow")
	}
	if cache.Flushes != flushes+1 {
		t.Fatalf("Flushes = %d, want a forced flush after overflow", cache.Flushes)
	}
}
