// Package topology models the physical datacenter network as a graph of
// hosts, switches and links, and provides the routing primitives Pythia's
// network scheduling module depends on: Dijkstra shortest paths and the
// Yen/successive-Dijkstra k-shortest-paths computation the paper describes
// (hop-count metric, recomputed only on topology change events).
package topology

import (
	"fmt"
	"sort"
)

// NodeID identifies a node (host or switch) in the graph.
type NodeID int

// NodeKind distinguishes servers (leaf vertices in the paper's routing
// graph) from network switches (intermediate vertices).
type NodeKind int

const (
	// Host is a server: a leaf vertex that sources/sinks traffic.
	Host NodeKind = iota
	// Switch is a network element that only forwards.
	Switch
)

func (k NodeKind) String() string {
	switch k {
	case Host:
		return "host"
	case Switch:
		return "switch"
	}
	return fmt.Sprintf("NodeKind(%d)", int(k))
}

// Node is a vertex in the topology.
type Node struct {
	ID   NodeID
	Kind NodeKind
	Name string
	// Rack groups hosts and their ToR switch; -1 for core switches.
	Rack int
}

// LinkID identifies a directed link. Physical cables are modeled as two
// directed links so that each direction has independent capacity, matching
// full-duplex Ethernet.
type LinkID int

// Link is a directed edge with a capacity in bits per second.
type Link struct {
	ID       LinkID
	From, To NodeID
	// CapacityBps is the nominal line rate in bits per second.
	CapacityBps float64
	Name        string
}

// Graph is the network topology. Construct with NewGraph and the Add*
// methods; the graph is then immutable from the router's perspective except
// through SetLinkUp (failure injection).
type Graph struct {
	nodes []Node
	links []Link
	// out[n] lists link IDs leaving node n.
	out [][]LinkID
	// linkIndex maps (from,to) to the link ID; parallel links get distinct
	// entries in parallel[].
	parallel map[[2]NodeID][]LinkID
	reverse  map[LinkID]LinkID // duplex pairing
	down     []bool            // indexed by LinkID
	version  uint64            // bumped on topology change, lets routers cache
	// sp is reusable shortest-path scratch (see paths.go). It makes the
	// routing queries allocation-free but means a Graph must not be
	// shared across goroutines; every simulation builds its own.
	sp spScratch
}

// NewGraph returns an empty topology.
func NewGraph() *Graph {
	return &Graph{
		parallel: make(map[[2]NodeID][]LinkID),
		reverse:  make(map[LinkID]LinkID),
	}
}

// AddNode adds a vertex and returns its ID.
func (g *Graph) AddNode(kind NodeKind, name string, rack int) NodeID {
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Kind: kind, Name: name, Rack: rack})
	g.out = append(g.out, nil)
	g.version++
	return id
}

// AddLink adds a single directed link and returns its ID. It panics on
// unknown endpoints or non-positive capacity.
func (g *Graph) AddLink(from, to NodeID, capacityBps float64, name string) LinkID {
	if !g.valid(from) || !g.valid(to) {
		panic(fmt.Sprintf("topology: AddLink with unknown node %d->%d", from, to))
	}
	if capacityBps <= 0 {
		panic("topology: AddLink with non-positive capacity")
	}
	id := LinkID(len(g.links))
	g.links = append(g.links, Link{ID: id, From: from, To: to, CapacityBps: capacityBps, Name: name})
	g.down = append(g.down, false)
	g.out[from] = append(g.out[from], id)
	key := [2]NodeID{from, to}
	g.parallel[key] = append(g.parallel[key], id)
	g.version++
	return id
}

// AddDuplex adds a full-duplex cable: two directed links, one per direction,
// each at the given capacity. It returns both link IDs (forward, reverse).
func (g *Graph) AddDuplex(a, b NodeID, capacityBps float64, name string) (LinkID, LinkID) {
	f := g.AddLink(a, b, capacityBps, name)
	r := g.AddLink(b, a, capacityBps, name+"~rev")
	g.reverse[f] = r
	g.reverse[r] = f
	return f, r
}

// Reverse returns the paired opposite-direction link of a duplex cable and
// true, or -1 and false for links added singly via AddLink.
func (g *Graph) Reverse(id LinkID) (LinkID, bool) {
	r, ok := g.reverse[id]
	if !ok {
		return -1, false
	}
	return r, true
}

func (g *Graph) valid(n NodeID) bool { return n >= 0 && int(n) < len(g.nodes) }

// Node returns the node record. It panics on an unknown ID.
func (g *Graph) Node(id NodeID) Node {
	if !g.valid(id) {
		panic(fmt.Sprintf("topology: unknown node %d", id))
	}
	return g.nodes[id]
}

// Link returns the link record. It panics on an unknown ID.
func (g *Graph) Link(id LinkID) Link {
	if id < 0 || int(id) >= len(g.links) {
		panic(fmt.Sprintf("topology: unknown link %d", id))
	}
	return g.links[id]
}

// Nodes returns all nodes in ID order.
func (g *Graph) Nodes() []Node { return append([]Node(nil), g.nodes...) }

// Links returns all links in ID order (including downed links).
func (g *Graph) Links() []Link { return append([]Link(nil), g.links...) }

// NumNodes and NumLinks report graph size.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumLinks reports the number of directed links.
func (g *Graph) NumLinks() int { return len(g.links) }

// Hosts returns the IDs of all host nodes in ID order.
func (g *Graph) Hosts() []NodeID {
	var hs []NodeID
	for _, n := range g.nodes {
		if n.Kind == Host {
			hs = append(hs, n.ID)
		}
	}
	return hs
}

// Switches returns the IDs of all switch nodes in ID order.
func (g *Graph) Switches() []NodeID {
	var ss []NodeID
	for _, n := range g.nodes {
		if n.Kind == Switch {
			ss = append(ss, n.ID)
		}
	}
	return ss
}

// Out returns the usable (up) links leaving node n.
func (g *Graph) Out(n NodeID) []LinkID {
	var ls []LinkID
	for _, l := range g.out[n] {
		if !g.down[l] {
			ls = append(ls, l)
		}
	}
	return ls
}

// SetLinkUp marks a link up (true) or down (false). Downed links are
// excluded from routing; the version counter is bumped so cached routing
// graphs are invalidated, mirroring the paper's reliance on OpenDaylight
// topology-update events for fault tolerance.
func (g *Graph) SetLinkUp(id LinkID, up bool) {
	if id < 0 || int(id) >= len(g.links) {
		panic(fmt.Sprintf("topology: unknown link %d", id))
	}
	if g.down[id] == !up {
		return
	}
	g.down[id] = !up
	g.version++
}

// LinkUp reports whether the link is usable.
func (g *Graph) LinkUp(id LinkID) bool {
	return id < 0 || int(id) >= len(g.down) || !g.down[id]
}

// Version is a counter bumped on every topology mutation; routing caches key
// off it.
func (g *Graph) Version() uint64 { return g.version }

// FindLinks returns the IDs of up links from a to b (parallel links give
// multiple results), in ID order.
func (g *Graph) FindLinks(a, b NodeID) []LinkID {
	var ls []LinkID
	for _, l := range g.parallel[[2]NodeID{a, b}] {
		if !g.down[l] {
			ls = append(ls, l)
		}
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	return ls
}
