// Package topology models the physical datacenter network as a graph of
// hosts, switches and links, and provides the routing primitives Pythia's
// network scheduling module depends on: Dijkstra shortest paths and the
// Yen/successive-Dijkstra k-shortest-paths computation the paper describes
// (hop-count metric, recomputed only on topology change events).
package topology

import (
	"fmt"
	"sort"
)

// NodeID identifies a node (host or switch) in the graph.
type NodeID int

// NodeKind distinguishes servers (leaf vertices in the paper's routing
// graph) from network switches (intermediate vertices).
type NodeKind int

const (
	// Host is a server: a leaf vertex that sources/sinks traffic.
	Host NodeKind = iota
	// Switch is a network element that only forwards.
	Switch
)

func (k NodeKind) String() string {
	switch k {
	case Host:
		return "host"
	case Switch:
		return "switch"
	}
	return fmt.Sprintf("NodeKind(%d)", int(k))
}

// Node is a vertex in the topology.
type Node struct {
	ID   NodeID
	Kind NodeKind
	Name string
	// Rack groups hosts and their ToR switch; -1 for core switches.
	Rack int
}

// LinkID identifies a directed link. Physical cables are modeled as two
// directed links so that each direction has independent capacity, matching
// full-duplex Ethernet.
type LinkID int

// Link is a directed edge with a capacity in bits per second.
type Link struct {
	ID       LinkID
	From, To NodeID
	// CapacityBps is the nominal line rate in bits per second.
	CapacityBps float64
	Name        string
}

// Graph is the network topology. Construct with NewGraph and the Add*
// methods; the graph is then immutable from the router's perspective except
// through SetLinkUp (failure injection).
type Graph struct {
	nodes []Node
	links []Link
	// out[n] lists link IDs leaving node n.
	out [][]LinkID
	// linkIndex maps (from,to) to the link ID; parallel links get distinct
	// entries in parallel[].
	parallel map[[2]NodeID][]LinkID
	reverse  map[LinkID]LinkID // duplex pairing
	// down is the *effective* link state consulted by every routing query:
	// a link is down when it was administratively failed (adminDown) or when
	// either endpoint node is down (nodeDown). The split keeps the common
	// read path a single []bool lookup while letting switch recovery avoid
	// resurrecting links that were failed independently.
	down      []bool // indexed by LinkID, effective state
	adminDown []bool // indexed by LinkID, explicit SetLinkUp state
	nodeDown  []bool // indexed by NodeID, SetNodeUp state
	version   uint64 // bumped on topology change, lets routers cache
	// structVer is bumped only on structural growth (AddNode/AddLink);
	// PathCache distinguishes it from link-state flips, which are journaled
	// below and support targeted invalidation.
	structVer uint64
	// journal records effective link-state transitions (the refreshLink
	// flips) in order, so a PathCache can invalidate only the pairs a
	// change can affect. journalHead is the absolute index of journal[0];
	// the ring is capped and consumers that fall behind do a full flush.
	journal     []linkTransition
	journalHead uint64
	// sp is reusable shortest-path scratch (see paths.go). It makes the
	// routing queries allocation-free but means a Graph must not be
	// shared across goroutines; every simulation builds its own.
	sp spScratch
}

// linkTransition is one effective link-state flip: the link went down (or
// came back up) from the router's perspective, whether by administrative
// action or an endpoint node change.
type linkTransition struct {
	link LinkID
	down bool
}

// graphJournalCap bounds the transition journal; when it overflows, the
// oldest half is dropped and caches that have not caught up flush fully.
const graphJournalCap = 4096

func (g *Graph) journalAppend(t linkTransition) {
	if len(g.journal) >= graphJournalCap {
		drop := len(g.journal) / 2
		g.journalHead += uint64(drop)
		g.journal = append(g.journal[:0], g.journal[drop:]...)
	}
	g.journal = append(g.journal, t)
}

// journalEnd is the absolute index one past the newest transition.
func (g *Graph) journalEnd() uint64 { return g.journalHead + uint64(len(g.journal)) }

// NewGraph returns an empty topology.
func NewGraph() *Graph {
	return &Graph{
		parallel: make(map[[2]NodeID][]LinkID),
		reverse:  make(map[LinkID]LinkID),
	}
}

// AddNode adds a vertex and returns its ID.
func (g *Graph) AddNode(kind NodeKind, name string, rack int) NodeID {
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Kind: kind, Name: name, Rack: rack})
	g.out = append(g.out, nil)
	g.nodeDown = append(g.nodeDown, false)
	g.version++
	g.structVer++
	return id
}

// AddLink adds a single directed link and returns its ID. It panics on
// unknown endpoints or non-positive capacity.
func (g *Graph) AddLink(from, to NodeID, capacityBps float64, name string) LinkID {
	if !g.valid(from) || !g.valid(to) {
		panic(fmt.Sprintf("topology: AddLink with unknown node %d->%d", from, to))
	}
	if capacityBps <= 0 {
		panic("topology: AddLink with non-positive capacity")
	}
	id := LinkID(len(g.links))
	g.links = append(g.links, Link{ID: id, From: from, To: to, CapacityBps: capacityBps, Name: name})
	g.down = append(g.down, g.nodeDown[from] || g.nodeDown[to])
	g.adminDown = append(g.adminDown, false)
	g.out[from] = append(g.out[from], id)
	key := [2]NodeID{from, to}
	g.parallel[key] = append(g.parallel[key], id)
	g.version++
	g.structVer++
	return id
}

// AddDuplex adds a full-duplex cable: two directed links, one per direction,
// each at the given capacity. It returns both link IDs (forward, reverse).
func (g *Graph) AddDuplex(a, b NodeID, capacityBps float64, name string) (LinkID, LinkID) {
	f := g.AddLink(a, b, capacityBps, name)
	r := g.AddLink(b, a, capacityBps, name+"~rev")
	g.reverse[f] = r
	g.reverse[r] = f
	return f, r
}

// Reverse returns the paired opposite-direction link of a duplex cable and
// true, or -1 and false for links added singly via AddLink.
func (g *Graph) Reverse(id LinkID) (LinkID, bool) {
	r, ok := g.reverse[id]
	if !ok {
		return -1, false
	}
	return r, true
}

func (g *Graph) valid(n NodeID) bool { return n >= 0 && int(n) < len(g.nodes) }

// Node returns the node record. It panics on an unknown ID.
func (g *Graph) Node(id NodeID) Node {
	if !g.valid(id) {
		panic(fmt.Sprintf("topology: unknown node %d", id))
	}
	return g.nodes[id]
}

// Link returns the link record. It panics on an unknown ID.
func (g *Graph) Link(id LinkID) Link {
	if id < 0 || int(id) >= len(g.links) {
		panic(fmt.Sprintf("topology: unknown link %d", id))
	}
	return g.links[id]
}

// Nodes returns all nodes in ID order.
func (g *Graph) Nodes() []Node { return append([]Node(nil), g.nodes...) }

// Links returns all links in ID order (including downed links).
func (g *Graph) Links() []Link { return append([]Link(nil), g.links...) }

// NumNodes and NumLinks report graph size.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumLinks reports the number of directed links.
func (g *Graph) NumLinks() int { return len(g.links) }

// Hosts returns the IDs of all host nodes in ID order.
func (g *Graph) Hosts() []NodeID {
	var hs []NodeID
	for _, n := range g.nodes {
		if n.Kind == Host {
			hs = append(hs, n.ID)
		}
	}
	return hs
}

// Switches returns the IDs of all switch nodes in ID order.
func (g *Graph) Switches() []NodeID {
	var ss []NodeID
	for _, n := range g.nodes {
		if n.Kind == Switch {
			ss = append(ss, n.ID)
		}
	}
	return ss
}

// Out returns the usable (up) links leaving node n.
func (g *Graph) Out(n NodeID) []LinkID {
	var ls []LinkID
	for _, l := range g.out[n] {
		if !g.down[l] {
			ls = append(ls, l)
		}
	}
	return ls
}

// SetLinkUp marks a link administratively up (true) or down (false). Downed
// links are excluded from routing; the version counter is bumped so cached
// routing graphs are invalidated, mirroring the paper's reliance on
// OpenDaylight topology-update events for fault tolerance. A link whose
// endpoint switch is down stays effectively down regardless of its
// administrative state.
func (g *Graph) SetLinkUp(id LinkID, up bool) {
	if id < 0 || int(id) >= len(g.links) {
		panic(fmt.Sprintf("topology: unknown link %d", id))
	}
	if g.adminDown[id] == !up {
		return
	}
	g.adminDown[id] = !up
	if g.refreshLink(id) {
		g.version++
	}
}

// refreshLink recomputes the effective down state of one link and reports
// whether it changed.
func (g *Graph) refreshLink(id LinkID) bool {
	l := g.links[id]
	eff := g.adminDown[id] || g.nodeDown[l.From] || g.nodeDown[l.To]
	if g.down[id] == eff {
		return false
	}
	g.down[id] = eff
	g.journalAppend(linkTransition{link: id, down: eff})
	return true
}

// SetNodeUp marks a node up (true) or down (false). A down node takes every
// incident link (both directions) effectively down with it; recovery brings
// back only links that are not administratively failed. The version counter
// is bumped on any state change so routing caches are invalidated.
func (g *Graph) SetNodeUp(id NodeID, up bool) {
	if !g.valid(id) {
		panic(fmt.Sprintf("topology: unknown node %d", id))
	}
	if g.nodeDown[id] == !up {
		return
	}
	g.nodeDown[id] = !up
	for _, l := range g.links {
		if l.From == id || l.To == id {
			g.refreshLink(l.ID)
		}
	}
	g.version++
}

// NodeUp reports whether the node is up.
func (g *Graph) NodeUp(id NodeID) bool {
	return !g.valid(id) || !g.nodeDown[id]
}

// LinkUp reports whether the link is usable (administratively up and both
// endpoints up).
func (g *Graph) LinkUp(id LinkID) bool {
	return id < 0 || int(id) >= len(g.down) || !g.down[id]
}

// LinkAdminUp reports the administrative state alone, ignoring endpoint
// node failures. Fault injectors use it to distinguish "down because the
// switch died" from "down because this cable was failed".
func (g *Graph) LinkAdminUp(id LinkID) bool {
	return id < 0 || int(id) >= len(g.adminDown) || !g.adminDown[id]
}

// Version is a counter bumped on every topology mutation; routing caches key
// off it.
func (g *Graph) Version() uint64 { return g.version }

// StructVersion is bumped only on structural growth (AddNode/AddLink), not on
// link-state flips. PathCache flushes fully on structural change and repairs
// incrementally on state flips.
func (g *Graph) StructVersion() uint64 { return g.structVer }

// FindLinks returns the IDs of up links from a to b (parallel links give
// multiple results), in ID order.
func (g *Graph) FindLinks(a, b NodeID) []LinkID {
	var ls []LinkID
	for _, l := range g.parallel[[2]NodeID{a, b}] {
		if !g.down[l] {
			ls = append(ls, l)
		}
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	return ls
}
