package topology

import (
	"testing"
	"testing/quick"
)

func line3() (*Graph, NodeID, NodeID, NodeID) {
	g := NewGraph()
	a := g.AddNode(Host, "a", 0)
	s := g.AddNode(Switch, "s", 0)
	b := g.AddNode(Host, "b", 0)
	g.AddDuplex(a, s, Gbps, "as")
	g.AddDuplex(s, b, Gbps, "sb")
	return g, a, s, b
}

func TestAddNodeAndLink(t *testing.T) {
	g, a, s, b := line3()
	if g.NumNodes() != 3 || g.NumLinks() != 4 {
		t.Fatalf("nodes=%d links=%d", g.NumNodes(), g.NumLinks())
	}
	if g.Node(a).Kind != Host || g.Node(s).Kind != Switch {
		t.Fatal("node kinds wrong")
	}
	if got := g.Hosts(); len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("Hosts = %v", got)
	}
	if got := g.Switches(); len(got) != 1 || got[0] != s {
		t.Fatalf("Switches = %v", got)
	}
}

func TestAddLinkValidation(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(Host, "a", 0)
	for _, fn := range []func(){
		func() { g.AddLink(a, NodeID(99), Gbps, "x") },
		func() { g.AddLink(NodeID(99), a, Gbps, "x") },
		func() { g.AddLink(a, a, 0, "x") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid AddLink did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestNodeKindString(t *testing.T) {
	if Host.String() != "host" || Switch.String() != "switch" {
		t.Fatal("NodeKind.String wrong")
	}
	if NodeKind(9).String() == "" {
		t.Fatal("unknown kind empty")
	}
}

func TestShortestPathLine(t *testing.T) {
	g, a, _, b := line3()
	p, ok := g.ShortestPath(a, b, nil, nil)
	if !ok {
		t.Fatal("no path a->b")
	}
	if p.Hops() != 2 {
		t.Fatalf("hops = %d, want 2", p.Hops())
	}
	if err := p.Valid(g); err != nil {
		t.Fatalf("invalid path: %v", err)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(Host, "a", 0)
	b := g.AddNode(Host, "b", 0)
	if _, ok := g.ShortestPath(a, b, nil, nil); ok {
		t.Fatal("found path in disconnected graph")
	}
}

func TestShortestPathRespectsDownedLink(t *testing.T) {
	g, a, _, b := line3()
	p, _ := g.ShortestPath(a, b, nil, nil)
	g.SetLinkUp(p.Links[0], false)
	if _, ok := g.ShortestPath(a, b, nil, nil); ok {
		t.Fatal("path found through downed link on only route")
	}
	g.SetLinkUp(p.Links[0], true)
	if _, ok := g.ShortestPath(a, b, nil, nil); !ok {
		t.Fatal("path not restored after link up")
	}
}

func TestVersionBumps(t *testing.T) {
	g, _, _, _ := line3()
	v := g.Version()
	g.SetLinkUp(0, false)
	if g.Version() == v {
		t.Fatal("version did not change on link down")
	}
	v = g.Version()
	g.SetLinkUp(0, false) // no-op
	if g.Version() != v {
		t.Fatal("version changed on redundant SetLinkUp")
	}
}

func TestTwoRackShape(t *testing.T) {
	g, hosts, trunks := TwoRack(5, 2, Gbps)
	if len(hosts) != 10 {
		t.Fatalf("hosts = %d, want 10", len(hosts))
	}
	if len(trunks) != 2 {
		t.Fatalf("trunks = %d, want 2", len(trunks))
	}
	// 10 host duplexes + 2 trunk duplexes = 24 directed links.
	if g.NumLinks() != 24 {
		t.Fatalf("links = %d, want 24", g.NumLinks())
	}
	if g.Node(hosts[0]).Rack != 0 || g.Node(hosts[9]).Rack != 1 {
		t.Fatal("rack assignment wrong")
	}
}

func TestTwoRackIntraRackPath(t *testing.T) {
	g, hosts, _ := TwoRack(5, 2, Gbps)
	p, ok := g.ShortestPath(hosts[0], hosts[1], nil, nil)
	if !ok || p.Hops() != 2 {
		t.Fatalf("intra-rack path hops = %d, want 2", p.Hops())
	}
}

func TestTwoRackInterRackTwoPaths(t *testing.T) {
	g, hosts, trunks := TwoRack(5, 2, Gbps)
	paths := g.KShortestPaths(hosts[0], hosts[5], 4)
	if len(paths) != 2 {
		t.Fatalf("inter-rack paths = %d, want exactly 2 (two trunks)", len(paths))
	}
	for _, p := range paths {
		if p.Hops() != 3 {
			t.Fatalf("inter-rack path hops = %d, want 3", p.Hops())
		}
		if err := p.Valid(g); err != nil {
			t.Fatalf("invalid path: %v", err)
		}
	}
	// The two paths must use the two distinct trunks.
	usedTrunk := map[LinkID]bool{}
	for _, p := range paths {
		for _, l := range p.Links {
			for _, tr := range trunks {
				if l == tr {
					usedTrunk[l] = true
				}
			}
		}
	}
	if len(usedTrunk) != 2 {
		t.Fatalf("paths used %d distinct trunks, want 2", len(usedTrunk))
	}
}

func TestKShortestOrdering(t *testing.T) {
	g, hosts := LeafSpine(3, 3, 2, Gbps)
	paths := g.KShortestPaths(hosts[0], hosts[2], 8)
	if len(paths) < 3 {
		t.Fatalf("leaf-spine inter-rack paths = %d, want >= 3 (one per spine)", len(paths))
	}
	// The three shortest must be the direct leaf-spine-leaf routes (4 hops);
	// anything after is a longer detour through another leaf.
	for i := 0; i < 3; i++ {
		if paths[i].Hops() != 4 {
			t.Fatalf("path %d hops = %d, want 4", i, paths[i].Hops())
		}
	}
	for i := 1; i < len(paths); i++ {
		if paths[i].Hops() < paths[i-1].Hops() {
			t.Fatal("paths not in nondecreasing hop order")
		}
	}
}

func TestKShortestDeterministic(t *testing.T) {
	g, hosts, _ := TwoRack(5, 2, Gbps)
	p1 := g.KShortestPaths(hosts[0], hosts[7], 4)
	p2 := g.KShortestPaths(hosts[0], hosts[7], 4)
	if len(p1) != len(p2) {
		t.Fatal("nondeterministic path count")
	}
	for i := range p1 {
		if !p1[i].Equal(p2[i]) {
			t.Fatal("nondeterministic path order")
		}
	}
}

func TestKShortestNoDuplicates(t *testing.T) {
	g, hosts := FatTree(4, 2, Gbps)
	paths := g.KShortestPaths(hosts[0], hosts[len(hosts)-1], 6)
	if len(paths) < 2 {
		t.Fatalf("fat-tree should offer multiple paths, got %d", len(paths))
	}
	for i := range paths {
		for j := i + 1; j < len(paths); j++ {
			if paths[i].Equal(paths[j]) {
				t.Fatalf("duplicate paths at %d,%d", i, j)
			}
		}
		if err := paths[i].Valid(g); err != nil {
			t.Fatalf("path %d invalid: %v", i, err)
		}
	}
}

func TestKShortestZeroOrNegative(t *testing.T) {
	g, hosts, _ := TwoRack(2, 1, Gbps)
	if got := g.KShortestPaths(hosts[0], hosts[2], 0); got != nil {
		t.Fatal("k=0 should return nil")
	}
	if got := g.KShortestPaths(hosts[0], hosts[2], -1); got != nil {
		t.Fatal("k<0 should return nil")
	}
}

func TestAllPairsKShortest(t *testing.T) {
	g, hosts, _ := TwoRack(3, 2, Gbps)
	all := g.AllPairsKShortest(2)
	if len(all) != len(hosts) {
		t.Fatalf("AllPairs sources = %d, want %d", len(all), len(hosts))
	}
	for _, s := range hosts {
		for _, d := range hosts {
			if s == d {
				if _, ok := all[s][d]; ok {
					t.Fatal("self pair present")
				}
				continue
			}
			ps := all[s][d]
			if len(ps) == 0 {
				t.Fatalf("no path %d->%d", s, d)
			}
			sameRack := g.Node(s).Rack == g.Node(d).Rack
			if sameRack && len(ps) != 1 {
				t.Fatalf("intra-rack pair has %d paths, want 1", len(ps))
			}
			if !sameRack && len(ps) != 2 {
				t.Fatalf("inter-rack pair has %d paths, want 2", len(ps))
			}
		}
	}
}

func TestFindLinks(t *testing.T) {
	g, _, trunks := TwoRack(2, 2, Gbps)
	tor0 := g.Link(trunks[0]).From
	tor1 := g.Link(trunks[0]).To
	ls := g.FindLinks(tor0, tor1)
	if len(ls) != 2 {
		t.Fatalf("FindLinks = %d, want 2 parallel trunks", len(ls))
	}
	g.SetLinkUp(trunks[0], false)
	if ls = g.FindLinks(tor0, tor1); len(ls) != 1 {
		t.Fatalf("FindLinks after down = %d, want 1", len(ls))
	}
}

func TestPathNodesAndFormat(t *testing.T) {
	g, a, s, b := line3()
	p, _ := g.ShortestPath(a, b, nil, nil)
	ns := p.Nodes(g)
	if len(ns) != 3 || ns[0] != a || ns[1] != s || ns[2] != b {
		t.Fatalf("Nodes = %v", ns)
	}
	if p.Format(g) == "" {
		t.Fatal("empty Format")
	}
}

func TestPathValidCatchesCorruption(t *testing.T) {
	g, a, _, b := line3()
	p, _ := g.ShortestPath(a, b, nil, nil)
	bad := Path{Links: []LinkID{p.Links[1], p.Links[0]}, Src: a, Dst: b}
	if bad.Valid(g) == nil {
		t.Fatal("disconnected link sequence passed Valid")
	}
	short := Path{Links: p.Links[:1], Src: a, Dst: b}
	if short.Valid(g) == nil {
		t.Fatal("path ending early passed Valid")
	}
}

func TestFatTreePathHops(t *testing.T) {
	g, hosts := FatTree(4, 2, Gbps)
	// Same edge switch: 2 hops (host->edge->host).
	p, ok := g.ShortestPath(hosts[0], hosts[1], nil, nil)
	if !ok || p.Hops() != 2 {
		t.Fatalf("same-edge hops = %d, want 2", p.Hops())
	}
	// Cross-pod: host->edge->agg->core->agg->edge->host = 6 hops.
	last := hosts[len(hosts)-1]
	p, ok = g.ShortestPath(hosts[0], last, nil, nil)
	if !ok || p.Hops() != 6 {
		t.Fatalf("cross-pod hops = %d, want 6", p.Hops())
	}
}

func TestBuilderPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { TwoRack(0, 1, Gbps) },
		func() { TwoRack(1, 0, Gbps) },
		func() { LeafSpine(0, 1, 1, Gbps) },
		func() { FatTree(3, 1, Gbps) },
		func() { FatTree(4, 0, Gbps) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid builder args did not panic")
				}
			}()
			fn()
		}()
	}
}

// Property: on a random leaf-spine, every k-shortest path returned is valid,
// loop-free and the list has no duplicates.
func TestPropertyKShortestValidity(t *testing.T) {
	f := func(leavesRaw, spinesRaw, kRaw uint8) bool {
		leaves := int(leavesRaw%4) + 2
		spines := int(spinesRaw%4) + 1
		k := int(kRaw%6) + 1
		g, hosts := LeafSpine(leaves, spines, 2, Gbps)
		src, dst := hosts[0], hosts[len(hosts)-1]
		paths := g.KShortestPaths(src, dst, k)
		if len(paths) == 0 || len(paths) > k {
			return false
		}
		for i, p := range paths {
			if p.Valid(g) != nil {
				return false
			}
			if i > 0 && p.Hops() < paths[i-1].Hops() {
				return false
			}
			for j := i + 1; j < len(paths); j++ {
				if p.Equal(paths[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKShortestTwoRack(b *testing.B) {
	g, hosts, _ := TwoRack(5, 2, Gbps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.KShortestPaths(hosts[0], hosts[9], 4)
	}
}

func BenchmarkAllPairsFatTree4(b *testing.B) {
	g, _ := FatTree(4, 2, Gbps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.AllPairsKShortest(4)
	}
}
