package topology

import (
	"strings"
	"testing"
	"testing/quick"
)

// bfsDist computes hop distances from src over up links — an independent
// oracle for Dijkstra with the hop-count metric.
func bfsDist(g *Graph, src NodeID) map[NodeID]int {
	dist := map[NodeID]int{src: 0}
	queue := []NodeID{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, lid := range g.Out(n) {
			to := g.Link(lid).To
			if _, seen := dist[to]; !seen {
				dist[to] = dist[n] + 1
				queue = append(queue, to)
			}
		}
	}
	return dist
}

// Property: ShortestPath length equals BFS distance on random leaf-spine
// and fat-tree topologies, including after random link failures.
func TestPropertyDijkstraMatchesBFS(t *testing.T) {
	f := func(shape uint8, failRaw uint8, si, di uint8) bool {
		var g *Graph
		var hosts []NodeID
		if shape%2 == 0 {
			g, hosts = LeafSpine(int(shape%3)+2, int(shape%2)+2, 2, Gbps)
		} else {
			g, hosts = FatTree(4, 2, Gbps)
		}
		// Fail a few random links deterministically.
		links := g.Links()
		for i := 0; i < int(failRaw%4); i++ {
			g.SetLinkUp(links[(int(failRaw)*7+i*13)%len(links)].ID, false)
		}
		src := hosts[int(si)%len(hosts)]
		dst := hosts[int(di)%len(hosts)]
		if src == dst {
			return true
		}
		want, reachable := bfsDist(g, src)[dst]
		p, ok := g.ShortestPath(src, dst, nil, nil)
		if ok != reachable {
			return false
		}
		if !ok {
			return true
		}
		return p.Hops() == want && p.Valid(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestReverseOnSingleLinks(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(Host, "a", 0)
	b := g.AddNode(Host, "b", 0)
	l := g.AddLink(a, b, Gbps, "one-way")
	if _, ok := g.Reverse(l); ok {
		t.Fatal("single link reported a reverse")
	}
	f, r := g.AddDuplex(a, b, Gbps, "du")
	if got, ok := g.Reverse(f); !ok || got != r {
		t.Fatal("duplex forward reverse wrong")
	}
	if got, ok := g.Reverse(r); !ok || got != f {
		t.Fatal("duplex reverse reverse wrong")
	}
}

func TestSetLinkUpUnknownPanics(t *testing.T) {
	g := NewGraph()
	defer func() {
		if recover() == nil {
			t.Error("unknown link did not panic")
		}
	}()
	g.SetLinkUp(42, false)
}

func TestNodeLinkAccessorPanics(t *testing.T) {
	g := NewGraph()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unknown node did not panic")
			}
		}()
		g.Node(7)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unknown link did not panic")
			}
		}()
		g.Link(7)
	}()
}

func TestToDOT(t *testing.T) {
	g, _, trunks := TwoRack(2, 2, Gbps)
	g.SetLinkUp(trunks[0], false)
	dot := ToDOT(g)
	for _, want := range []string{
		"graph topology {", "cluster_rack0", "cluster_rack1",
		"rack0-host0", "tor1", "1G", "style=dashed", "}",
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("dot missing %q:\n%s", want, dot)
		}
	}
	// One edge per duplex pair: 4 host edges + 2 trunks = 6 "--" edges.
	if n := strings.Count(dot, "--"); n != 6 {
		t.Fatalf("edges = %d, want 6", n)
	}
}

func TestToDOTLeafSpineCoreOutsideClusters(t *testing.T) {
	g, _ := LeafSpine(2, 2, 1, Gbps)
	dot := ToDOT(g)
	if !strings.Contains(dot, "spine0") || !strings.Contains(dot, "spine1") {
		t.Fatal("spines missing")
	}
}
