package topology

import (
	"fmt"
	"strings"
)

// Path is a loop-free sequence of directed links from a source node to a
// destination node. Paths are link sequences, not node sequences, because
// the evaluation topology (two ToR switches joined by two parallel cables)
// has distinct paths that traverse the same nodes.
type Path struct {
	Links []LinkID
	Src   NodeID
	Dst   NodeID
}

// Hops returns the number of links on the path (the paper's distance
// metric).
func (p Path) Hops() int { return len(p.Links) }

// Nodes returns the node sequence Src..Dst implied by the links.
func (p Path) Nodes(g *Graph) []NodeID {
	ns := []NodeID{p.Src}
	for _, l := range p.Links {
		ns = append(ns, g.Link(l).To)
	}
	return ns
}

// Equal reports whether two paths use the identical link sequence.
func (p Path) Equal(q Path) bool {
	if p.Src != q.Src || p.Dst != q.Dst || len(p.Links) != len(q.Links) {
		return false
	}
	for i := range p.Links {
		if p.Links[i] != q.Links[i] {
			return false
		}
	}
	return true
}

// String renders the path as "src -[link]-> ... -> dst" using node names.
func (p Path) Format(g *Graph) string {
	var b strings.Builder
	b.WriteString(g.Node(p.Src).Name)
	for _, l := range p.Links {
		fmt.Fprintf(&b, " -[%s]-> %s", g.Link(l).Name, g.Node(g.Link(l).To).Name)
	}
	return b.String()
}

// Valid checks structural integrity: links are connected head-to-tail, start
// at Src, end at Dst, all links up, and no node repeats (loop-free).
func (p Path) Valid(g *Graph) error {
	at := p.Src
	seen := map[NodeID]bool{p.Src: true}
	for i, lid := range p.Links {
		l := g.Link(lid)
		if !g.LinkUp(lid) {
			return fmt.Errorf("link %d is down", lid)
		}
		if l.From != at {
			return fmt.Errorf("link %d at position %d starts at node %d, expected %d", lid, i, l.From, at)
		}
		at = l.To
		if seen[at] && at != p.Dst {
			return fmt.Errorf("path revisits node %d", at)
		}
		if seen[at] && at == p.Dst && i != len(p.Links)-1 {
			return fmt.Errorf("path passes through destination before ending")
		}
		seen[at] = true
	}
	if at != p.Dst {
		return fmt.Errorf("path ends at node %d, expected %d", at, p.Dst)
	}
	return nil
}

// spScratch is the reusable state behind ShortestPath/KShortestPaths.
// Visited marks and ban sets are epoch-stamped so queries never pay an
// O(nodes+links) clear; growing the graph just extends the slices (zero
// stamps never equal a live epoch).
type spScratch struct {
	epoch    uint64
	visited  []uint64 // visited[n] == epoch: n reached this query
	dist     []int
	prev     []LinkID
	queue    []NodeID
	banEpoch uint64
	linkBan  []uint64 // linkBan[l] == banEpoch: l excluded this query
	nodeBan  []uint64
}

func (s *spScratch) grow(nodes, links int) {
	for len(s.visited) < nodes {
		s.visited = append(s.visited, 0)
		s.dist = append(s.dist, 0)
		s.prev = append(s.prev, -1)
		s.nodeBan = append(s.nodeBan, 0)
	}
	for len(s.linkBan) < links {
		s.linkBan = append(s.linkBan, 0)
	}
}

// ShortestPath finds a minimum-hop path from src to dst, excluding any
// links in banned and any nodes in bannedNodes. It returns the path and
// true, or a zero path and false when dst is unreachable. Ties are broken
// deterministically by link ID so results are stable across runs.
//
// The metric is unit hop count, so this is a FIFO breadth-first search —
// exactly equivalent to Dijkstra ordered by (distance, insertion), which
// is what earlier revisions ran, but without the heap or any per-call
// allocation (scratch lives on the Graph; see spScratch).
func (g *Graph) ShortestPath(src, dst NodeID, banned map[LinkID]bool, bannedNodes map[NodeID]bool) (Path, bool) {
	s := &g.sp
	s.grow(len(g.nodes), len(g.links))
	s.banEpoch++
	for lid, b := range banned {
		if b {
			s.linkBan[lid] = s.banEpoch
		}
	}
	for n, b := range bannedNodes {
		if b {
			s.nodeBan[n] = s.banEpoch
		}
	}
	return g.shortestPathBFS(src, dst)
}

// shortestPathBFS runs the search against the current scratch ban epoch.
func (g *Graph) shortestPathBFS(src, dst NodeID) (Path, bool) {
	s := &g.sp
	s.epoch++
	s.queue = s.queue[:0]
	s.visited[src] = s.epoch
	s.dist[src] = 0
	s.prev[src] = -1
	s.queue = append(s.queue, src)
	for qi := 0; qi < len(s.queue); qi++ {
		u := s.queue[qi]
		if u == dst {
			break
		}
		nd := s.dist[u] + 1
		for _, lid := range g.out[u] {
			if g.down[lid] || s.linkBan[lid] == s.banEpoch {
				continue
			}
			to := g.links[lid].To
			if s.nodeBan[to] == s.banEpoch && to != dst {
				continue
			}
			if s.visited[to] != s.epoch {
				// First discovery is final with unit weights.
				s.visited[to] = s.epoch
				s.dist[to] = nd
				s.prev[to] = lid
				s.queue = append(s.queue, to)
			} else if nd == s.dist[to] && s.prev[to] > lid && s.prev[to] != -1 {
				// Equal-cost with a smaller link ID: keeps
				// tie-breaks deterministic.
				s.prev[to] = lid
			}
		}
	}
	if src != dst && s.visited[dst] != s.epoch {
		return Path{}, false
	}
	n := 0
	for at := dst; at != src; n++ {
		at = g.links[s.prev[at]].From
	}
	links := make([]LinkID, n)
	for at := dst; at != src; {
		lid := s.prev[at]
		n--
		links[n] = lid
		at = g.links[lid].From
	}
	return Path{Links: links, Src: src, Dst: dst}, true
}

// KShortestPaths returns up to k loop-free paths from src to dst in
// nondecreasing hop-count order (Yen's algorithm over link sequences, built
// from successive Dijkstra calls as the paper describes). Parallel links
// yield distinct paths. Results are deterministic.
func (g *Graph) KShortestPaths(src, dst NodeID, k int) []Path {
	if k <= 0 {
		return nil
	}
	first, ok := g.ShortestPath(src, dst, nil, nil)
	if !ok {
		return nil
	}
	paths := []Path{first}
	var candidates []Path

	for len(paths) < k {
		prevPath := paths[len(paths)-1]
		// For each node along the previous path, branch: ban the links
		// that previous paths used at this divergence point and the
		// root-path nodes, then reroute the tail.
		prevNodes := prevPath.Nodes(g)
		for i := 0; i < len(prevPath.Links); i++ {
			spurNode := prevNodes[i]
			rootLinks := prevPath.Links[:i]

			// Stamp the bans straight into the scratch epoch instead of
			// building throwaway maps for every spur.
			g.sp.grow(len(g.nodes), len(g.links))
			g.sp.banEpoch++
			for _, p := range paths {
				if hasPrefix(p.Links, rootLinks) && len(p.Links) > i {
					g.sp.linkBan[p.Links[i]] = g.sp.banEpoch
				}
			}
			for _, n := range prevNodes[:i] {
				g.sp.nodeBan[n] = g.sp.banEpoch
			}

			spur, ok := g.shortestPathBFS(spurNode, dst)
			if !ok {
				continue
			}
			total := Path{
				Links: append(append([]LinkID(nil), rootLinks...), spur.Links...),
				Src:   src,
				Dst:   dst,
			}
			if total.Valid(g) != nil {
				continue
			}
			dup := false
			for _, c := range candidates {
				if c.Equal(total) {
					dup = true
					break
				}
			}
			for _, p := range paths {
				if p.Equal(total) {
					dup = true
					break
				}
			}
			if !dup {
				candidates = append(candidates, total)
			}
		}
		if len(candidates) == 0 {
			break
		}
		// Pick the shortest candidate; tie-break by lexicographic link
		// IDs for determinism.
		best := 0
		for i := 1; i < len(candidates); i++ {
			if pathLess(candidates[i], candidates[best]) {
				best = i
			}
		}
		paths = append(paths, candidates[best])
		candidates = append(candidates[:best], candidates[best+1:]...)
	}
	return paths
}

func hasPrefix(links, prefix []LinkID) bool {
	if len(links) < len(prefix) {
		return false
	}
	for i := range prefix {
		if links[i] != prefix[i] {
			return false
		}
	}
	return true
}

func pathLess(a, b Path) bool {
	if len(a.Links) != len(b.Links) {
		return len(a.Links) < len(b.Links)
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			return a.Links[i] < b.Links[i]
		}
	}
	return false
}

// AllPairsKShortest computes k-shortest paths between every ordered pair of
// hosts, as the paper's flow allocation module does at startup. The result
// maps [src][dst] to the path list. For h hosts this is O(h²) Dijkstra-based
// computations, acceptable off the data path.
func (g *Graph) AllPairsKShortest(k int) map[NodeID]map[NodeID][]Path {
	hosts := g.Hosts()
	out := make(map[NodeID]map[NodeID][]Path, len(hosts))
	for _, s := range hosts {
		out[s] = make(map[NodeID][]Path, len(hosts)-1)
		for _, d := range hosts {
			if s == d {
				continue
			}
			out[s][d] = g.KShortestPaths(s, d, k)
		}
	}
	return out
}
