package topology

import (
	"container/heap"
	"fmt"
	"strings"
)

// Path is a loop-free sequence of directed links from a source node to a
// destination node. Paths are link sequences, not node sequences, because
// the evaluation topology (two ToR switches joined by two parallel cables)
// has distinct paths that traverse the same nodes.
type Path struct {
	Links []LinkID
	Src   NodeID
	Dst   NodeID
}

// Hops returns the number of links on the path (the paper's distance
// metric).
func (p Path) Hops() int { return len(p.Links) }

// Nodes returns the node sequence Src..Dst implied by the links.
func (p Path) Nodes(g *Graph) []NodeID {
	ns := []NodeID{p.Src}
	for _, l := range p.Links {
		ns = append(ns, g.Link(l).To)
	}
	return ns
}

// Equal reports whether two paths use the identical link sequence.
func (p Path) Equal(q Path) bool {
	if p.Src != q.Src || p.Dst != q.Dst || len(p.Links) != len(q.Links) {
		return false
	}
	for i := range p.Links {
		if p.Links[i] != q.Links[i] {
			return false
		}
	}
	return true
}

// String renders the path as "src -[link]-> ... -> dst" using node names.
func (p Path) Format(g *Graph) string {
	var b strings.Builder
	b.WriteString(g.Node(p.Src).Name)
	for _, l := range p.Links {
		fmt.Fprintf(&b, " -[%s]-> %s", g.Link(l).Name, g.Node(g.Link(l).To).Name)
	}
	return b.String()
}

// Valid checks structural integrity: links are connected head-to-tail, start
// at Src, end at Dst, all links up, and no node repeats (loop-free).
func (p Path) Valid(g *Graph) error {
	at := p.Src
	seen := map[NodeID]bool{p.Src: true}
	for i, lid := range p.Links {
		l := g.Link(lid)
		if !g.LinkUp(lid) {
			return fmt.Errorf("link %d is down", lid)
		}
		if l.From != at {
			return fmt.Errorf("link %d at position %d starts at node %d, expected %d", lid, i, l.From, at)
		}
		at = l.To
		if seen[at] && at != p.Dst {
			return fmt.Errorf("path revisits node %d", at)
		}
		if seen[at] && at == p.Dst && i != len(p.Links)-1 {
			return fmt.Errorf("path passes through destination before ending")
		}
		seen[at] = true
	}
	if at != p.Dst {
		return fmt.Errorf("path ends at node %d, expected %d", at, p.Dst)
	}
	return nil
}

type pqItem struct {
	node NodeID
	dist int
	seq  int
}

type nodePQ []pqItem

func (q nodePQ) Len() int { return len(q) }
func (q nodePQ) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	return q[i].seq < q[j].seq
}
func (q nodePQ) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *nodePQ) Push(x any)   { *q = append(*q, x.(pqItem)) }
func (q *nodePQ) Pop() any     { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// ShortestPath runs Dijkstra with hop-count metric from src to dst,
// excluding any links in banned and any nodes in bannedNodes. It returns the
// path and true, or a zero path and false when dst is unreachable. Ties are
// broken deterministically by link ID so results are stable across runs.
func (g *Graph) ShortestPath(src, dst NodeID, banned map[LinkID]bool, bannedNodes map[NodeID]bool) (Path, bool) {
	const inf = int(^uint(0) >> 1)
	dist := make([]int, len(g.nodes))
	prev := make([]LinkID, len(g.nodes))
	for i := range dist {
		dist[i] = inf
		prev[i] = -1
	}
	dist[src] = 0
	pq := &nodePQ{{node: src}}
	seq := 1
	for pq.Len() > 0 {
		it := heap.Pop(pq).(pqItem)
		if it.dist > dist[it.node] {
			continue
		}
		if it.node == dst {
			break
		}
		for _, lid := range g.out[it.node] {
			if g.down[lid] || (banned != nil && banned[lid]) {
				continue
			}
			l := g.links[lid]
			if bannedNodes != nil && bannedNodes[l.To] && l.To != dst {
				continue
			}
			nd := it.dist + 1
			if nd < dist[l.To] || (nd == dist[l.To] && prev[l.To] > lid && prev[l.To] != -1) {
				// Strict improvement, or equal-cost with a smaller
				// link ID: keeps tie-breaks deterministic.
				if nd < dist[l.To] {
					dist[l.To] = nd
					prev[l.To] = lid
					heap.Push(pq, pqItem{node: l.To, dist: nd, seq: seq})
					seq++
				} else {
					prev[l.To] = lid
				}
			}
		}
	}
	if prev[dst] == -1 && src != dst {
		return Path{}, false
	}
	var rev []LinkID
	for at := dst; at != src; {
		lid := prev[at]
		rev = append(rev, lid)
		at = g.links[lid].From
	}
	links := make([]LinkID, len(rev))
	for i := range rev {
		links[i] = rev[len(rev)-1-i]
	}
	return Path{Links: links, Src: src, Dst: dst}, true
}

// KShortestPaths returns up to k loop-free paths from src to dst in
// nondecreasing hop-count order (Yen's algorithm over link sequences, built
// from successive Dijkstra calls as the paper describes). Parallel links
// yield distinct paths. Results are deterministic.
func (g *Graph) KShortestPaths(src, dst NodeID, k int) []Path {
	if k <= 0 {
		return nil
	}
	first, ok := g.ShortestPath(src, dst, nil, nil)
	if !ok {
		return nil
	}
	paths := []Path{first}
	var candidates []Path

	for len(paths) < k {
		prevPath := paths[len(paths)-1]
		// For each node along the previous path, branch: ban the links
		// that previous paths used at this divergence point and the
		// root-path nodes, then reroute the tail.
		prevNodes := prevPath.Nodes(g)
		for i := 0; i < len(prevPath.Links); i++ {
			spurNode := prevNodes[i]
			rootLinks := append([]LinkID(nil), prevPath.Links[:i]...)

			banned := make(map[LinkID]bool)
			for _, p := range paths {
				if hasPrefix(p.Links, rootLinks) && len(p.Links) > i {
					banned[p.Links[i]] = true
				}
			}
			bannedNodes := make(map[NodeID]bool)
			for _, n := range prevNodes[:i] {
				bannedNodes[n] = true
			}

			spur, ok := g.ShortestPath(spurNode, dst, banned, bannedNodes)
			if !ok {
				continue
			}
			total := Path{
				Links: append(append([]LinkID(nil), rootLinks...), spur.Links...),
				Src:   src,
				Dst:   dst,
			}
			if total.Valid(g) != nil {
				continue
			}
			dup := false
			for _, c := range candidates {
				if c.Equal(total) {
					dup = true
					break
				}
			}
			for _, p := range paths {
				if p.Equal(total) {
					dup = true
					break
				}
			}
			if !dup {
				candidates = append(candidates, total)
			}
		}
		if len(candidates) == 0 {
			break
		}
		// Pick the shortest candidate; tie-break by lexicographic link
		// IDs for determinism.
		best := 0
		for i := 1; i < len(candidates); i++ {
			if pathLess(candidates[i], candidates[best]) {
				best = i
			}
		}
		paths = append(paths, candidates[best])
		candidates = append(candidates[:best], candidates[best+1:]...)
	}
	return paths
}

func hasPrefix(links, prefix []LinkID) bool {
	if len(links) < len(prefix) {
		return false
	}
	for i := range prefix {
		if links[i] != prefix[i] {
			return false
		}
	}
	return true
}

func pathLess(a, b Path) bool {
	if len(a.Links) != len(b.Links) {
		return len(a.Links) < len(b.Links)
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			return a.Links[i] < b.Links[i]
		}
	}
	return false
}

// AllPairsKShortest computes k-shortest paths between every ordered pair of
// hosts, as the paper's flow allocation module does at startup. The result
// maps [src][dst] to the path list. For h hosts this is O(h²) Dijkstra-based
// computations, acceptable off the data path.
func (g *Graph) AllPairsKShortest(k int) map[NodeID]map[NodeID][]Path {
	hosts := g.Hosts()
	out := make(map[NodeID]map[NodeID][]Path, len(hosts))
	for _, s := range hosts {
		out[s] = make(map[NodeID][]Path, len(hosts)-1)
		for _, d := range hosts {
			if s == d {
				continue
			}
			out[s][d] = g.KShortestPaths(s, d, k)
		}
	}
	return out
}
