// Package stats provides the deterministic random-number machinery and the
// small statistical helpers the simulators and the experiment harness rely
// on: a splitmix64 PRNG (so every experiment is exactly reproducible from a
// seed), a bounded Zipf sampler for modeling MapReduce key skew, and
// summary-statistics utilities.
package stats

import "math"

// RNG is a splitmix64 pseudo-random generator. It is deliberately tiny and
// allocation-free; distinct simulation components derive independent streams
// via Split so that adding randomness in one component does not perturb the
// sequences seen by another.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Split derives an independent child generator. The child's stream is a
// deterministic function of the parent state and the label, and advancing
// the child does not advance the parent beyond this call.
func (r *RNG) Split(label uint64) *RNG {
	return &RNG{state: r.Uint64() ^ mix(label^0x9e3779b97f4a7c15)}
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix(r.state)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform float64 in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Normal returns a normally distributed float64 with the given mean and
// standard deviation (Box–Muller).
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns a log-normally distributed value whose underlying normal
// has parameters mu, sigma.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Perm returns a random permutation of [0, n), Fisher–Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n indices via swap, Fisher–Yates.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
