package stats

import "math"

// Steady-state measurement helpers: warm-up truncation (MSER-5) and the
// correlation statistic the steady harness uses to relate prediction
// lateness to tail-latency windows.

// MSER5BatchSize is the classic batch width of the MSER-5 truncation rule.
const MSER5BatchSize = 5

// MSER5 locates the warm-up truncation point of an observation series in
// collection order using the Marginal Standard Error Rule with batches of
// five (White 1997): observations are grouped into consecutive batches of
// five, and the truncation point d* minimizes the marginal standard error
//
//	MSER(d) = (1/(n-d)²) · Σ_{j≥d} (z_j − mean_{j≥d})²
//
// over the batch means z_j. Following standard practice the candidate
// truncation points are restricted to the first half of the series — the
// later suffixes are so short that their marginal error vanishes
// degenerately (one kept batch always has zero SSE). The returned cut is
// the number of raw observations to discard (d*·5). ok reports whether
// the series was long enough to evaluate the rule (at least four batches).
func MSER5(xs []float64) (cut int, ok bool) {
	nb := len(xs) / MSER5BatchSize
	if nb < 4 {
		return 0, false
	}
	means := make([]float64, nb)
	for j := 0; j < nb; j++ {
		sum := 0.0
		for i := 0; i < MSER5BatchSize; i++ {
			sum += xs[j*MSER5BatchSize+i]
		}
		means[j] = sum / MSER5BatchSize
	}
	// Suffix sums let each candidate truncation evaluate in O(1).
	sufSum := make([]float64, nb+1)
	sufSq := make([]float64, nb+1)
	for j := nb - 1; j >= 0; j-- {
		sufSum[j] = sufSum[j+1] + means[j]
		sufSq[j] = sufSq[j+1] + means[j]*means[j]
	}
	bestD, bestV := 0, math.Inf(1)
	for d := 0; d <= nb/2; d++ {
		k := float64(nb - d)
		v := (sufSq[d] - sufSum[d]*sufSum[d]/k) / (k * k)
		if v < bestV {
			bestV = v
			bestD = d
		}
	}
	return bestD * MSER5BatchSize, true
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// series, or 0 when either series is degenerate (fewer than two points or
// zero variance).
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
