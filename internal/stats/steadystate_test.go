package stats

import (
	"math"
	"testing"
)

func TestMSER5TooShort(t *testing.T) {
	// Fewer than four batches (20 observations) cannot be evaluated.
	xs := make([]float64, 19)
	if cut, ok := MSER5(xs); ok || cut != 0 {
		t.Fatalf("MSER5(19 obs) = (%d, %v), want (0, false)", cut, ok)
	}
}

func TestMSER5StationarySeriesKeepsEverything(t *testing.T) {
	// A flat series has no transient: the best truncation is zero.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 10 + 0.01*math.Sin(float64(i))
	}
	cut, ok := MSER5(xs)
	if !ok {
		t.Fatal("100 observations must be evaluable")
	}
	if cut != 0 {
		t.Fatalf("stationary series cut = %d, want 0", cut)
	}
}

func TestMSER5CutsInflatedPrefix(t *testing.T) {
	// 20 inflated observations followed by 80 stationary ones: the rule
	// must discard the transient (a multiple of the batch size, at least
	// covering the inflated prefix) and nothing close to the half-series
	// degenerate minimum.
	xs := make([]float64, 100)
	for i := range xs {
		if i < 20 {
			xs[i] = 100 - float64(i) // cooling transient
		} else {
			xs[i] = 10 + 0.5*math.Sin(float64(i))
		}
	}
	cut, ok := MSER5(xs)
	if !ok {
		t.Fatal("series must be evaluable")
	}
	if cut%MSER5BatchSize != 0 {
		t.Fatalf("cut %d not a multiple of the batch size", cut)
	}
	if cut < 20 || cut > 30 {
		t.Fatalf("cut = %d, want the ~20-observation transient removed", cut)
	}
}

func TestMSER5CandidatesRestrictedToFirstHalf(t *testing.T) {
	// A series whose tail happens to be ultra-flat must not tempt the rule
	// into discarding most of the data: candidates stop at half.
	xs := make([]float64, 40)
	for i := range xs {
		xs[i] = float64(i % 7) // noisy everywhere
	}
	xs[38], xs[39] = 3, 3 // flat tail
	cut, _ := MSER5(xs)
	if cut > len(xs)/2 {
		t.Fatalf("cut = %d discards more than half of %d observations", cut, len(xs))
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if r := Pearson(xs, ys); math.Abs(r-1) > 1e-12 {
		t.Fatalf("Pearson(x, 2x) = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(xs, neg); math.Abs(r+1) > 1e-12 {
		t.Fatalf("Pearson(x, -2x) = %v, want -1", r)
	}
}

func TestPearsonDegenerateInputs(t *testing.T) {
	if r := Pearson([]float64{1, 2}, []float64{1}); r != 0 {
		t.Fatalf("length mismatch = %v, want 0", r)
	}
	if r := Pearson([]float64{1}, []float64{2}); r != 0 {
		t.Fatalf("single point = %v, want 0", r)
	}
	if r := Pearson([]float64{3, 3, 3}, []float64{1, 2, 3}); r != 0 {
		t.Fatalf("zero variance = %v, want 0", r)
	}
}

func TestPearsonUncorrelatedNearZero(t *testing.T) {
	r := NewRNG(31)
	xs := make([]float64, 5000)
	ys := make([]float64, 5000)
	for i := range xs {
		xs[i] = r.Float64()
		ys[i] = r.Float64()
	}
	if c := Pearson(xs, ys); math.Abs(c) > 0.05 {
		t.Fatalf("independent uniforms correlation = %v, want ~0", c)
	}
}
