package stats

// Zipf samples integers in [0, N) with probability proportional to
// 1/(rank+1)^s. MapReduce key spaces are commonly Zipf-distributed, which is
// the root cause of the reducer skew the Pythia paper targets (Fig. 1a shows
// reducer-0 receiving 5x the bytes of reducer-1).
//
// The implementation precomputes the CDF and samples by binary search, which
// is exact (no rejection) and fast for the N values used here (≤ 1e6).
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf returns a sampler over [0, n) with exponent s ≥ 0. s = 0
// degenerates to the uniform distribution. It panics if n <= 0 or s < 0.
func NewZipf(rng *RNG, s float64, n int) *Zipf {
	if n <= 0 {
		panic("stats: Zipf with non-positive n")
	}
	if s < 0 {
		panic("stats: Zipf with negative exponent")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += zipfWeight(i, s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

func zipfWeight(rank int, s float64) float64 {
	x := float64(rank + 1)
	// x^-s without math.Pow in the common integer cases keeps this hot
	// path cheap; fall back to the general form otherwise.
	switch s {
	case 0:
		return 1
	case 1:
		return 1 / x
	case 2:
		return 1 / (x * x)
	}
	return pow(x, -s)
}

func pow(x, y float64) float64 {
	return exp(y * ln(x))
}

// Thin wrappers so the dependency on math stays localized and mockable in
// tests.
func exp(x float64) float64 { return mathExp(x) }
func ln(x float64) float64  { return mathLog(x) }

// N returns the size of the sampled domain.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample draws one value in [0, N).
func (z *Zipf) Sample() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// PMF returns the probability of rank i.
func (z *Zipf) PMF(i int) float64 {
	if i < 0 || i >= len(z.cdf) {
		return 0
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// SkewWeights distributes a total across n buckets with the given Zipf
// exponent: weights[i] is the fraction of total assigned to bucket i. The
// weights sum to 1. This is how the workload generators shape per-reducer
// partition sizes.
func SkewWeights(n int, s float64) []float64 {
	if n <= 0 {
		panic("stats: SkewWeights with non-positive n")
	}
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = zipfWeight(i, s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}
