package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRNGFloat64Uniformity(t *testing.T) {
	r := NewRNG(9)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of uniforms = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) covered %d values in 1000 draws", len(seen))
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(5)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("children with different labels produced same first draw")
	}
	// Advancing a child must not perturb the parent's future stream.
	p2 := NewRNG(5)
	p2.Split(1)
	p2.Split(2)
	child := NewRNG(5).Split(1)
	for i := 0; i < 1000; i++ {
		child.Uint64()
	}
	// parent consumed two Uint64s for the two Splits; p2 likewise.
	if parent.Uint64() != p2.Uint64() {
		t.Fatal("advancing a child perturbed the parent stream")
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Normal(10, 2)
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("normal stddev = %v, want ~2", math.Sqrt(variance))
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := r.Exp(3)
		if x < 0 {
			t.Fatalf("Exp returned negative %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-3) > 0.05 {
		t.Fatalf("exp mean = %v, want ~3", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(17)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestZipfBounds(t *testing.T) {
	z := NewZipf(NewRNG(19), 1.0, 100)
	for i := 0; i < 10000; i++ {
		v := z.Sample()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf sample %d out of range", v)
		}
	}
}

func TestZipfSkewOrdering(t *testing.T) {
	z := NewZipf(NewRNG(23), 1.2, 50)
	counts := make([]int, 50)
	for i := 0; i < 200000; i++ {
		counts[z.Sample()]++
	}
	// Rank 0 must dominate rank 10 which must dominate rank 40.
	if !(counts[0] > counts[10] && counts[10] > counts[40]) {
		t.Fatalf("Zipf counts not decreasing: c0=%d c10=%d c40=%d",
			counts[0], counts[10], counts[40])
	}
}

func TestZipfZeroExponentUniform(t *testing.T) {
	z := NewZipf(NewRNG(29), 0, 10)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Sample()]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-n/10) > n/10*0.15 {
			t.Fatalf("s=0 bucket %d count %d deviates from uniform", i, c)
		}
	}
}

func TestZipfPMFSumsToOne(t *testing.T) {
	z := NewZipf(NewRNG(1), 1.5, 200)
	sum := 0.0
	for i := 0; i < z.N(); i++ {
		sum += z.PMF(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("PMF sums to %v", sum)
	}
	if z.PMF(-1) != 0 || z.PMF(200) != 0 {
		t.Fatal("PMF out of range not zero")
	}
}

func TestZipfPanics(t *testing.T) {
	for _, tc := range []struct {
		s float64
		n int
	}{{-1, 10}, {1, 0}, {1, -5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(s=%v,n=%d) did not panic", tc.s, tc.n)
				}
			}()
			NewZipf(NewRNG(1), tc.s, tc.n)
		}()
	}
}

func TestSkewWeights(t *testing.T) {
	w := SkewWeights(5, 1)
	sum := 0.0
	for i, v := range w {
		sum += v
		if i > 0 && v > w[i-1] {
			t.Fatalf("weights not decreasing: %v", w)
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights sum to %v", sum)
	}
	// s=1, n=2 gives ratio 2:1; larger exponents give larger ratios.
	w2 := SkewWeights(2, 1)
	if math.Abs(w2[0]/w2[1]-2) > 1e-9 {
		t.Fatalf("s=1 two-bucket ratio = %v, want 2", w2[0]/w2[1])
	}
}

// Property: SkewWeights always sums to 1 and is nonincreasing for any valid
// (n, s).
func TestPropertySkewWeights(t *testing.T) {
	f := func(nRaw uint8, sRaw uint8) bool {
		n := int(nRaw%64) + 1
		s := float64(sRaw%40) / 10
		w := SkewWeights(n, s)
		sum := 0.0
		for i, v := range w {
			sum += v
			if v < 0 || (i > 0 && v > w[i-1]+1e-12) {
				return false
			}
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("Summarize = %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("Stddev = %v", s.Stddev)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatalf("empty Summarize = %+v", z)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if p := Percentile(sorted, 0); p != 10 {
		t.Fatalf("P0 = %v", p)
	}
	if p := Percentile(sorted, 1); p != 40 {
		t.Fatalf("P100 = %v", p)
	}
	if p := Percentile(sorted, 0.5); p != 25 {
		t.Fatalf("P50 = %v, want 25", p)
	}
}

func TestSummarizeSingleSample(t *testing.T) {
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Min != 7 || s.Max != 7 {
		t.Fatalf("single-sample Summarize = %+v", s)
	}
	// With one observation there is no spread and every percentile is the
	// observation itself.
	if s.Stddev != 0 {
		t.Fatalf("single-sample Stddev = %v, want 0", s.Stddev)
	}
	if s.P50 != 7 || s.P95 != 7 || s.P99 != 7 {
		t.Fatalf("single-sample percentiles = p50 %v p95 %v p99 %v, want all 7",
			s.P50, s.P95, s.P99)
	}
}

func TestPercentileDuplicates(t *testing.T) {
	// Heavy ties must interpolate within the runs, never off the data range.
	sorted := []float64{5, 5, 5, 5, 9}
	for _, tc := range []struct {
		p, want float64
	}{{0, 5}, {0.5, 5}, {0.75, 5}, {1, 9}} {
		if got := Percentile(sorted, tc.p); got != tc.want {
			t.Fatalf("P%v of %v = %v, want %v", tc.p*100, sorted, got, tc.want)
		}
	}
	allSame := []float64{3, 3, 3, 3}
	for _, p := range []float64{0, 0.5, 0.95, 1} {
		if got := Percentile(allSame, p); got != 3 {
			t.Fatalf("all-equal P%v = %v, want 3", p*100, got)
		}
	}
}

func TestExpVariance(t *testing.T) {
	// Exponential(mean m) has variance m²; a far-off variance would mean
	// the inverse-CDF draw is warped even if the mean happens to match.
	r := NewRNG(37)
	const n = 200000
	const mean = 3.0
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Exp(mean)
		sum += x
		sumsq += x * x
	}
	m := sum / n
	variance := sumsq/n - m*m
	if math.Abs(variance-mean*mean)/(mean*mean) > 0.05 {
		t.Fatalf("exp variance = %v, want ~%v", variance, mean*mean)
	}
}

func TestPercentilePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Percentile(empty) did not panic")
		}
	}()
	Percentile(nil, 0.5)
}

func TestSpeedup(t *testing.T) {
	if s := Speedup(146, 100); math.Abs(s-0.46) > 1e-12 {
		t.Fatalf("Speedup = %v, want 0.46", s)
	}
	if s := Speedup(100, 100); s != 0 {
		t.Fatalf("Speedup equal = %v", s)
	}
	if s := Speedup(100, 0); s != 0 {
		t.Fatalf("Speedup div-zero guard = %v", s)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Fatal("Mean wrong")
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[float64]string{
		512:     "512B",
		2048:    "2.00KiB",
		1 << 20: "1.00MiB",
		1 << 30: "1.00GiB",
	}
	for in, want := range cases {
		if got := HumanBytes(in); got != want {
			t.Errorf("HumanBytes(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestHistogram(t *testing.T) {
	bins := Histogram([]float64{0, 1, 2, 3, 9.9, -5, 100}, 0, 10, 10)
	if bins[0] != 3 { // 0, 1(->bin1? no: width=1 so 1 is bin 1)... recompute
		// width = 1: 0->bin0, 1->bin1, 2->bin2, 3->bin3, 9.9->bin9,
		// -5 clamps to bin0, 100 clamps to bin9.
		t.Logf("bins: %v", bins)
	}
	if bins[0] != 2 || bins[1] != 1 || bins[9] != 2 {
		t.Fatalf("Histogram = %v", bins)
	}
	total := 0
	for _, b := range bins {
		total += b
	}
	if total != 7 {
		t.Fatalf("histogram total %d, want 7", total)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad Histogram params did not panic")
		}
	}()
	Histogram(nil, 5, 5, 10)
}

// Property: Summarize invariants Min ≤ P50 ≤ Max and Min ≤ Mean ≤ Max.
func TestPropertySummarizeBounds(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Min <= s.P50 && s.P50 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max &&
			s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkZipfSample(b *testing.B) {
	z := NewZipf(NewRNG(1), 1.1, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Sample()
	}
}

func TestCI95(t *testing.T) {
	if CI95(nil) != 0 || CI95([]float64{5}) != 0 {
		t.Fatal("degenerate samples must yield 0")
	}
	// n=2, values {0, 2}: mean 1, stddev sqrt(2), t(df=1)=12.706.
	ci := CI95([]float64{0, 2})
	want := 12.706 * math.Sqrt2 / math.Sqrt(2)
	if math.Abs(ci-want) > 1e-9 {
		t.Fatalf("CI95 = %v, want %v", ci, want)
	}
	// Large n converges to 1.96 * sd/sqrt(n).
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i % 2) // alternating 0/1: sd ≈ 0.5025
	}
	s := Summarize(xs)
	want = 1.96 * s.Stddev / 10
	if math.Abs(CI95(xs)-want) > 1e-9 {
		t.Fatalf("large-n CI = %v, want %v", CI95(xs), want)
	}
}

func TestJainFairness(t *testing.T) {
	if JainFairness(nil) != 0 {
		t.Fatal("empty != 0")
	}
	if f := JainFairness([]float64{5, 5, 5, 5}); math.Abs(f-1) > 1e-12 {
		t.Fatalf("equal shares fairness = %v", f)
	}
	if f := JainFairness([]float64{1, 0, 0, 0}); math.Abs(f-0.25) > 1e-12 {
		t.Fatalf("monopolized fairness = %v, want 1/n", f)
	}
	if f := JainFairness([]float64{0, 0}); f != 1 {
		t.Fatalf("all-zero fairness = %v", f)
	}
	// Invariance under scaling.
	a := JainFairness([]float64{1, 2, 3})
	b := JainFairness([]float64{10, 20, 30})
	if math.Abs(a-b) > 1e-12 {
		t.Fatal("not scale-invariant")
	}
}
