package stats

import (
	"fmt"
	"math"
	"sort"
)

// mathExp and mathLog are indirections used by zipf.go.
var (
	mathExp = math.Exp
	mathLog = math.Log
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
	P50    float64
	P95    float64
	P99    float64
}

// Summarize computes descriptive statistics. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	varsum := 0.0
	for _, x := range xs {
		d := x - s.Mean
		varsum += d * d
	}
	if len(xs) > 1 {
		s.Stddev = math.Sqrt(varsum / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = Percentile(sorted, 0.50)
	s.P95 = Percentile(sorted, 0.95)
	s.P99 = Percentile(sorted, 0.99)
	return s
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of an ascending-sorted
// sample using linear interpolation. It panics on an empty sample.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Percentile of empty sample")
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// tTable holds two-sided 95% t-distribution critical values for small
// degrees of freedom (df = index); larger samples use the normal 1.96.
var tTable = []float64{0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042}

// CI95 returns the half-width of the 95% confidence interval of the sample
// mean (Student's t for n ≤ 31, normal beyond). Samples of fewer than two
// points yield 0.
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	s := Summarize(xs)
	df := n - 1
	t := 1.96
	if df < len(tTable) {
		t = tTable[df]
	}
	return t * s.Stddev / math.Sqrt(float64(n))
}

// Speedup returns the relative improvement of new over old as used in the
// paper's Figures 3 and 4: (old - new) / new. A positive value means new is
// faster; 0.46 corresponds to the paper's headline "46%".
func Speedup(oldTime, newTime float64) float64 {
	if newTime <= 0 {
		return 0
	}
	return (oldTime - newTime) / newTime
}

// HumanBytes renders a byte count in binary units (KiB/MiB/GiB) for tables.
func HumanBytes(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMiB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fKiB", b/(1<<10))
	}
	return fmt.Sprintf("%.0fB", b)
}

// Histogram builds a fixed-width histogram over [min, max) with n bins.
// Values outside the range are clamped into the edge bins.
func Histogram(xs []float64, min, max float64, n int) []int {
	if n <= 0 || max <= min {
		panic("stats: bad histogram parameters")
	}
	bins := make([]int, n)
	width := (max - min) / float64(n)
	for _, x := range xs {
		i := int((x - min) / width)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		bins[i]++
	}
	return bins
}

// JainFairness computes Jain's fairness index (Σx)²/(n·Σx²) over a set of
// allocations: 1.0 = perfectly fair, 1/n = one flow takes everything. Used
// to validate the max-min allocator and to report shuffle-share balance.
func JainFairness(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumsq float64
	for _, x := range xs {
		sum += x
		sumsq += x * x
	}
	if sumsq == 0 {
		return 1 // all-zero allocations are (vacuously) fair
	}
	return sum * sum / (float64(len(xs)) * sumsq)
}
