// Command pythia-flight inspects cross-plane flight-recorder logs: it
// renders per-job critical-path summaries from a JSONL event log, or runs
// the built-in chaos scenario (the seeded all-planes fault storm from the
// test suite) and captures its flight log.
//
// Usage:
//
//	pythia-flight -i flight.jsonl              # summarize an existing log
//	pythia-flight -run chaos [-seed N]         # run the storm, print summary
//	              [-scheduler ecmp|pythia|hedera]
//	              [-o flight.jsonl] [-prom metrics.prom]
package main

import (
	"flag"
	"fmt"
	"os"

	"pythia"
	"pythia/internal/flight"
)

func main() {
	input := flag.String("i", "", "summarize this flight-recorder JSONL file")
	run := flag.String("run", "", "run a built-in scenario instead of reading a file (only: chaos)")
	scheduler := flag.String("scheduler", "pythia", "scheduler for -run: ecmp, pythia or hedera")
	seed := flag.Uint64("seed", 13, "seed for -run")
	out := flag.String("o", "", "write the scenario's JSONL log to this path")
	prom := flag.String("prom", "", "write a Prometheus text snapshot to this path")
	flag.Parse()

	switch {
	case *input != "" && *run != "":
		fmt.Fprintln(os.Stderr, "pass either -i or -run, not both")
		os.Exit(2)
	case *input != "":
		summarizeFile(*input, *prom)
	case *run == "chaos":
		runChaos(*scheduler, *seed, *out, *prom)
	case *run != "":
		fmt.Fprintf(os.Stderr, "unknown scenario %q (only: chaos)\n", *run)
		os.Exit(2)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// summarizeFile renders the per-job critical-path digest of a saved log.
func summarizeFile(path, promPath string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
	events, err := flight.ParseJSONL(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
	if err := flight.VerifyChains(events); err != nil {
		fmt.Fprintf(os.Stderr, "warning: %v\n", err)
	}
	fmt.Print(flight.Summarize(events))
	printQuality(flight.ComputeQuality(events))
	if promPath != "" {
		writeFile(promPath, []byte(flight.BuildMetrics(events).PrometheusText()))
	}
}

// runChaos mirrors the test suite's all-planes fault storm — trunk failure,
// controller outage, management-star outage, monitor crash, per-message
// drops/dups/jitter and noisy predictions — with the flight recorder on.
func runChaos(scheduler string, seed uint64, outPath, promPath string) {
	var kind pythia.SchedulerKind
	switch scheduler {
	case "ecmp":
		kind = pythia.SchedulerECMP
	case "pythia":
		kind = pythia.SchedulerPythia
	case "hedera":
		kind = pythia.SchedulerHedera
	default:
		fmt.Fprintf(os.Stderr, "unknown scheduler %q\n", scheduler)
		os.Exit(2)
	}
	cl := pythia.New(
		pythia.WithScheduler(kind),
		pythia.WithOversubscription(10),
		pythia.WithSeed(seed),
		pythia.WithDeadline(600),
		pythia.WithFlightRecorder(),
		pythia.WithMgmtFaults(pythia.MgmtFaults{
			DropProb:     0.10,
			DupProb:      0.15,
			JitterMaxSec: 0.002,
			Seed:         99,
		}),
		pythia.WithMonitorFaults(pythia.MonitorFaults{CrashProb: 0.10, DowntimeSec: 4, Seed: 7}),
		pythia.WithPredictionError(0.25, 3),
		pythia.WithBookingTTL(30),
		pythia.WithControlPlaneFaults(pythia.ControlPlaneFaults{
			InstallTimeoutSec: 0.05,
			MaxRetries:        2,
			RetryBackoffSec:   0.1,
		}),
	)
	trunks := cl.Trunks()
	cl.At(5, func() { cl.FailLink(trunks[0]) })
	cl.At(25, func() { cl.RecoverLink(trunks[0]) })
	cl.At(8, func() { cl.FailController() })
	cl.At(18, func() { cl.RecoverController() })
	cl.At(10, func() { cl.FailMgmt() })
	cl.At(14, func() { cl.RecoverMgmt() })
	cl.At(3, func() { cl.CrashMonitor(1) })

	results, err := cl.TryRunJobs(
		pythia.SortJob(4*pythia.GB, 8, 5),
		pythia.NutchJob(1*pythia.GB, 4, 6),
	)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos run: %v\n", err)
		os.Exit(1)
	}
	for _, r := range results {
		fmt.Printf("job %-12s %.1fs (maps %.1fs, shuffle barrier %.1fs)\n",
			r.Name, r.DurationSec, r.MapPhaseSec, r.ShuffleSec)
	}
	events, err := flight.ParseJSONL(cl.FlightJSONL())
	if err != nil {
		fmt.Fprintf(os.Stderr, "re-parsing own log: %v\n", err)
		os.Exit(1)
	}
	if err := flight.VerifyChains(events); err != nil {
		fmt.Fprintf(os.Stderr, "span-chain check failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%d flight events, span chains verified\n", len(events))
	fmt.Print(cl.FlightSummary())
	printQuality(cl.PredictionQuality())
	if outPath != "" {
		writeFile(outPath, cl.FlightJSONL())
	}
	if promPath != "" {
		writeFile(promPath, []byte(cl.PrometheusSnapshot()))
	}
}

func printQuality(q pythia.PredictionQuality) {
	if q.CoveredFlows == 0 {
		return
	}
	fmt.Printf("prediction quality: lead p50/p95/max %.3f/%.3f/%.3f s, late %.1f%% of %d covered flows, |byte err| mean %.1f%%\n",
		q.LeadP50Sec, q.LeadP95Sec, q.LeadMaxSec,
		q.LateFraction*100, q.CoveredFlows, q.ByteErrMeanAbsFrac*100)
}

func writeFile(path string, data []byte) {
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}
