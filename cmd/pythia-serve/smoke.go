package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"pythia/internal/flight"
	"pythia/internal/serve"
)

// runScrapeSmoke is the operations-plane smoke test CI runs: boot a fully
// instrumented in-process server (metrics, journal, flight recorder), drive
// real ingest through the retrying client, scrape GET /metrics, lint the
// exposition with the package's own conformance linter, assert the key
// series across the serve/WAL/collector planes, and write the scrape to
// promOut as the build artifact. Exits nonzero on any failure.
func runScrapeSmoke(jobs int, seed uint64, promOut string) {
	if jobs <= 0 {
		jobs = 8
	}
	if seed == 0 {
		seed = 1
	}
	walDir, err := os.MkdirTemp("", "pythia-smoke-wal-")
	if err != nil {
		fatal("scrape-smoke: %v", err)
	}
	defer os.RemoveAll(walDir)
	srv, err := serve.New(serve.Config{
		Shards:       2,
		ClockHz:      200,
		WALDir:       walDir,
		Metrics:      true,
		FlightEvents: 1024,
	})
	if err != nil {
		fatal("scrape-smoke: %v", err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := serve.NewClient(ts.URL, serve.ClientConfig{HTTP: ts.Client(), Seed: seed})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// A small deterministic trace: per job one reducer pair, three intents
	// (one duplicated to tick dedup), then retirement.
	ops := 0
	for j := 0; j < jobs; j++ {
		reqs := []*serve.IngestRequest{
			{Reducers: []serve.WireReducerUp{
				{Job: j, Reduce: 0, Host: (j * 2) % srv.NumHosts()},
				{Job: j, Reduce: 1, Host: (j*2 + 1) % srv.NumHosts()},
			}},
		}
		for m := 0; m < 3; m++ {
			in := serve.WireIntent{Job: j, Map: m, SrcHost: (j + m) % srv.NumHosts(),
				PredictedWireBytes: []float64{2e6, 3e6}}
			intents := []serve.WireIntent{in}
			if m == 0 {
				intents = append(intents, in) // duplicate: dedup must tick
			}
			reqs = append(reqs, &serve.IngestRequest{Intents: intents})
		}
		reqs = append(reqs, &serve.IngestRequest{DoneJobs: []int{j}})
		for _, r := range reqs {
			if _, err := cl.Ingest(ctx, r); err != nil {
				fatal("scrape-smoke: ingest: %v", err)
			}
			ops += len(r.Intents) + len(r.Reducers) + len(r.DoneJobs)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		fatal("scrape-smoke: GET /metrics: %v", err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		fatal("scrape-smoke: GET /metrics: HTTP %d (%v)", resp.StatusCode, err)
	}
	if err := flight.LintExposition(string(raw)); err != nil {
		fatal("scrape-smoke: exposition fails lint: %v", err)
	}
	exp, err := flight.ParseExposition(string(raw))
	if err != nil {
		fatal("scrape-smoke: exposition fails parse: %v", err)
	}

	assertAtLeast := func(name string, min float64, kv ...string) {
		s := exp.Sample(name, kv...)
		if s == nil {
			fatal("scrape-smoke: series %s%v missing", name, kv)
		}
		if s.Value < min {
			fatal("scrape-smoke: %s%v = %v, want >= %v", name, kv, s.Value, min)
		}
	}
	assertAtLeast("pythia_serve_requests_total", float64(jobs*5), "route", "/v1/ingest", "code", "200")
	assertAtLeast("pythia_serve_request_seconds_count", float64(jobs*5), "route", "/v1/ingest")
	assertAtLeast("pythia_serve_batches_total", 1)
	assertAtLeast("pythia_serve_ops_total", float64(ops))
	assertAtLeast("pythia_serve_commit_seconds_count", 1)
	assertAtLeast("pythia_serve_ready", 1)
	assertAtLeast("pythia_wal_appends_total", 1)
	assertAtLeast("pythia_wal_fsync_seconds_count", 1)
	assertAtLeast("pythia_collector_intents_received_total", float64(jobs*3))
	assertAtLeast("pythia_collector_dedup_hits_total", float64(jobs))
	assertAtLeast("pythia_collector_shard_dedup_hits_total", 0, "shard", "0")
	assertAtLeast("pythia_serve_placements_total", 1)

	// The flight recorder captured the batch lifecycle.
	kinds := map[flight.Kind]int{}
	for _, ev := range srv.FlightEvents() {
		kinds[ev.Kind]++
	}
	for _, k := range []flight.Kind{flight.BatchIngested, flight.BatchJournaled, flight.BatchCommitted} {
		if kinds[k] == 0 {
			fatal("scrape-smoke: flight recorder missing %s events", k)
		}
	}
	if _, err := srv.ChromeTrace(); err != nil {
		fatal("scrape-smoke: chrome trace: %v", err)
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		fatal("scrape-smoke: shutdown: %v", err)
	}
	if promOut != "" {
		if err := os.WriteFile(promOut, raw, 0o644); err != nil {
			fatal("scrape-smoke: write %s: %v", promOut, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", promOut)
	}
	fmt.Printf("scrape-smoke: OK — %d jobs, %d ops, %d bytes of exposition, %d flight events\n",
		jobs, ops, len(raw), len(srv.FlightEvents()))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
