// Command pythia-serve runs the sharded Pythia collector as an online
// HTTP/JSON service, or benchmarks that service against the in-process
// single-shard oracle.
//
// Usage:
//
//	pythia-serve [-addr :8080] [-shards N] [-workers N]   # serve until SIGINT
//	             [-queue N] [-batch N] [-maxops N]
//	             [-ttl SEC] [-k N] [-fattree-k N] [-clockhz HZ]
//	             [-wal-dir DIR] [-recover] [-fsync-every N]
//	             [-snapshot-every N] [-segment-bytes N]
//	             [-metrics] [-pprof] [-log-level LEVEL] [-flight-events N]
//	pythia-serve -bench [-json BENCH_serve.json]          # throughput benchmark
//	             [-jobs N] [-conns N] [-chunk N] [-seed N]
//	             [-shard-counts 1,2,4,8]
//	pythia-serve -bench-recovery [-json BENCH_recovery.json]  # crash recovery
//	             [-jobs N] [-chunk N] [-seed N] [-fsync-every N]
//	             [-snapshot-everys -1,8,32]
//	pythia-serve -scrape-smoke [-prom-out METRICS_serve.prom] # metrics smoke
//	             [-jobs N] [-seed N]
//
// In serve mode the process answers POST /v1/ingest, GET /v1/stats,
// GET /v1/healthz (liveness), and GET /v1/readyz (readiness — 503 with the
// reason while recovering or draining), and drains gracefully on
// SIGINT/SIGTERM. -metrics (default on) serves the Prometheus exposition at
// GET /metrics; -pprof mounts /debug/pprof; -log-level enables structured
// JSON request logs on stderr; -flight-events keeps a bounded in-memory
// flight recorder of the batch lifecycle. With -wal-dir every batch is
// journaled before it is acknowledged and -recover restarts from the
// journal (last snapshot plus tail replay). In bench mode it drives the
// open-loop workload through in-process servers at each shard count,
// verifies the placement stream is bit-identical to the oracle, and reports
// intents/sec plus placement-latency percentiles; -bench-recovery crashes a
// journaled server and measures recovery at several snapshot cadences.
// -scrape-smoke boots an instrumented in-process server, drives real
// ingest, lints the /metrics exposition, asserts the key series, and writes
// the scrape to -prom-out — the CI gate for the operations plane.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pythia/internal/bench"
	"pythia/internal/serve"
)

func main() {
	// Serve mode.
	addr := flag.String("addr", ":8080", "listen address for serve mode")
	shards := flag.Int("shards", 4, "collector shard count")
	workers := flag.Int("workers", 0, "batch workers (0 = shard count)")
	queue := flag.Int("queue", 256, "bounded ingest queue capacity (requests)")
	batch := flag.Int("batch", 512, "max operations coalesced per collector batch")
	maxOps := flag.Int("maxops", 4096, "max operations per ingest request")
	ttl := flag.Float64("ttl", 30, "booking TTL in seconds")
	k := flag.Int("k", 4, "flow-placement path candidates (paper's K)")
	fatTreeK := flag.Int("fattree-k", 4, "fat-tree arity of the simulated fabric")
	clockHz := flag.Float64("clockhz", 0, "logical clock rate in ops/sec (0 = wall clock)")
	walDir := flag.String("wal-dir", "", "write-ahead journal directory (empty = no journal)")
	doRecover := flag.Bool("recover", false, "recover collector state from the journal on startup")
	fsyncEvery := flag.Int("fsync-every", 0, "fsync the journal every N appends (0 = every append, <0 = never)")
	snapEvery := flag.Int("snapshot-every", 0, "snapshot every N journaled batches (0 = default 1024, <0 = never)")
	segBytes := flag.Int64("segment-bytes", 0, "journal segment rotation size (0 = default 8 MiB)")
	metrics := flag.Bool("metrics", true, "serve the Prometheus exposition at GET /metrics")
	doPprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	logLevel := flag.String("log-level", "", "structured JSON request logs on stderr at this level (debug|info|warn|error; empty = off)")
	flightEvents := flag.Int("flight-events", 0, "keep the newest N serve-plane flight events in memory (0 = off)")

	// Bench modes.
	doBench := flag.Bool("bench", false, "run the serve throughput benchmark instead of serving")
	doBenchRecovery := flag.Bool("bench-recovery", false, "run the crash-recovery benchmark instead of serving")
	jsonOut := flag.String("json", "", "bench: write the JSON artifact to this path")
	jobs := flag.Int("jobs", 0, "bench: open-loop jobs in the trace (0 = default)")
	conns := flag.Int("conns", 0, "bench: concurrent connections (0 = default)")
	chunk := flag.Int("chunk", 0, "bench: operations per ingest request (0 = default)")
	seed := flag.Uint64("seed", 0, "bench: trace seed (0 = default)")
	shardCounts := flag.String("shard-counts", "", "bench: comma-separated shard counts (empty = 1,2,4,8)")
	snapEverys := flag.String("snapshot-everys", "", "bench-recovery: comma-separated snapshot cadences (empty = -1,8,32)")
	doScrapeSmoke := flag.Bool("scrape-smoke", false, "run the metrics scrape smoke test instead of serving")
	promOut := flag.String("prom-out", "", "scrape-smoke: write the /metrics exposition to this path")
	flag.Parse()

	modes := 0
	for _, m := range []bool{*doBench, *doBenchRecovery, *doScrapeSmoke} {
		if m {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(os.Stderr, "pythia-serve: -bench, -bench-recovery, and -scrape-smoke are mutually exclusive")
		os.Exit(2)
	}
	if *doBench {
		runBench(*jobs, *conns, *chunk, *seed, *shardCounts, *jsonOut)
		return
	}
	if *doBenchRecovery {
		runBenchRecovery(*jobs, *chunk, *seed, *fsyncEvery, *snapEverys, *jsonOut)
		return
	}
	if *doScrapeSmoke {
		runScrapeSmoke(*jobs, *seed, *promOut)
		return
	}
	runServe(serve.Config{
		Shards:           *shards,
		Workers:          *workers,
		QueueCap:         *queue,
		BatchMax:         *batch,
		MaxOpsPerRequest: *maxOps,
		ClockHz:          *clockHz,
		BookingTTLSec:    *ttl,
		K:                *k,
		FatTreeK:         *fatTreeK,
		WALDir:           *walDir,
		Recover:          *doRecover,
		FsyncEvery:       *fsyncEvery,
		SnapshotEvery:    *snapEvery,
		SegmentBytes:     *segBytes,
		Metrics:          *metrics,
		Pprof:            *doPprof,
		Logger:           buildLogger(*logLevel),
		FlightEvents:     *flightEvents,
	}, *addr)
}

// buildLogger maps -log-level onto a JSON slog logger on stderr; empty
// disables logging entirely (nil logger = zero-cost request path).
func buildLogger(level string) *slog.Logger {
	if level == "" {
		return nil
	}
	var l slog.Level
	switch strings.ToLower(level) {
	case "debug":
		l = slog.LevelDebug
	case "info":
		l = slog.LevelInfo
	case "warn":
		l = slog.LevelWarn
	case "error":
		l = slog.LevelError
	default:
		fmt.Fprintf(os.Stderr, "pythia-serve: bad -log-level %q (want debug|info|warn|error)\n", level)
		os.Exit(2)
	}
	return slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: l}))
}

// runServe listens on addr until SIGINT/SIGTERM, then drains gracefully.
func runServe(cfg serve.Config, addr string) {
	srv, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pythia-serve: %v\n", err)
		os.Exit(1)
	}
	srv.Start()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(addr) }()
	durable := "no journal"
	if cfg.WALDir != "" {
		durable = fmt.Sprintf("journal in %s", cfg.WALDir)
	}
	fmt.Fprintf(os.Stderr, "pythia-serve: listening on %s (%d shards, %d hosts, %s)\n",
		addr, cfg.Defaults().Shards, srv.NumHosts(), durable)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "pythia-serve: %v\n", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "pythia-serve: %v, draining\n", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "pythia-serve: shutdown: %v\n", err)
		os.Exit(1)
	}
}

// runBench runs the throughput benchmark, prints the table, optionally
// writes the JSON artifact, and exits nonzero if any shard count diverges
// from the oracle or leaks bookings.
func runBench(jobs, conns, chunk int, seed uint64, shardCounts, jsonOut string) {
	cfg := bench.ServeConfig{Jobs: jobs, Conns: conns, ChunkOps: chunk, Seed: seed}
	cfg.ShardCounts = parseIntList(shardCounts, "-shard-counts", 1)
	res, err := bench.RunServeBench(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pythia-serve: bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(res)
	if jsonOut != "" {
		b, err := json.MarshalIndent(res, "", "  ")
		if err == nil {
			err = os.WriteFile(jsonOut, append(b, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "pythia-serve: write %s: %v\n", jsonOut, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", jsonOut)
	}
	bad := false
	for _, row := range res.Rows {
		if !row.DigestMatchesOracle {
			fmt.Fprintf(os.Stderr, "FAIL: shards=%d digest %s != oracle %s\n",
				row.Shards, row.Digest, res.OracleDigest)
			bad = true
		}
		if row.LeakedBookings != 0 {
			fmt.Fprintf(os.Stderr, "FAIL: shards=%d leaked %d bookings\n",
				row.Shards, row.LeakedBookings)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}

// runBenchRecovery runs the crash-recovery benchmark, prints the table,
// optionally writes the JSON artifact, and exits nonzero if any snapshot
// cadence recovers a digest diverging from the oracle or leaks bookings.
func runBenchRecovery(jobs, chunk int, seed uint64, fsyncEvery int, snapEverys, jsonOut string) {
	cfg := bench.RecoveryConfig{Jobs: jobs, ChunkOps: chunk, Seed: seed, FsyncEvery: fsyncEvery}
	cfg.SnapshotEverys = parseIntList(snapEverys, "-snapshot-everys", -1)
	res, err := bench.RunRecoveryBench(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pythia-serve: bench-recovery: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(res)
	if jsonOut != "" {
		b, err := json.MarshalIndent(res, "", "  ")
		if err == nil {
			err = os.WriteFile(jsonOut, append(b, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "pythia-serve: write %s: %v\n", jsonOut, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", jsonOut)
	}
	bad := false
	for _, row := range res.Rows {
		if !row.DigestMatchesOracle {
			fmt.Fprintf(os.Stderr, "FAIL: snapshot_every=%d recovered digest %s != oracle %s\n",
				row.SnapshotEvery, row.Digest, res.OracleDigest)
			bad = true
		}
		if row.LeakedBookings != 0 {
			fmt.Fprintf(os.Stderr, "FAIL: snapshot_every=%d leaked %d bookings\n",
				row.SnapshotEvery, row.LeakedBookings)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}

// parseIntList parses a comma-separated int flag, exiting on malformed or
// below-minimum entries. Empty input returns nil (the bench's default).
func parseIntList(s, flagName string, min int) []int {
	if s == "" {
		return nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < min {
			fmt.Fprintf(os.Stderr, "pythia-serve: bad %s entry %q\n", flagName, f)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}
