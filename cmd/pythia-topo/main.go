// Command pythia-topo inspects the simulated testbed topologies: node and
// link inventory, k-shortest paths between hosts, and Graphviz DOT export.
//
// Usage:
//
//	pythia-topo [-topology tworack|leafspine|fattree] [-hosts N] [-trunks N]
//	            [-leaves N] [-spines N] [-arity K] [-gbps N]
//	            [-paths SRC,DST] [-k N] [-dot out.dot]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pythia/internal/topology"
)

func main() {
	topoName := flag.String("topology", "tworack", "tworack, leafspine or fattree")
	hostsPerRack := flag.Int("hosts", 5, "hosts per rack (tworack/leafspine)")
	trunks := flag.Int("trunks", 2, "inter-rack trunks (tworack)")
	leaves := flag.Int("leaves", 4, "leaf switches (leafspine)")
	spines := flag.Int("spines", 2, "spine switches (leafspine)")
	arity := flag.Int("arity", 4, "fat-tree arity k (fattree)")
	gbps := flag.Float64("gbps", 1, "link rate in Gbps")
	pathsArg := flag.String("paths", "", "print k-shortest paths between two host indices, e.g. 0,7")
	k := flag.Int("k", 4, "number of shortest paths to print")
	dotPath := flag.String("dot", "", "write a Graphviz DOT file to this path")
	flag.Parse()

	var g *topology.Graph
	var hosts []topology.NodeID
	bps := *gbps * 1e9
	switch *topoName {
	case "tworack":
		g, hosts, _ = topology.TwoRack(*hostsPerRack, *trunks, bps)
	case "leafspine":
		g, hosts = topology.LeafSpine(*leaves, *spines, *hostsPerRack, bps)
	case "fattree":
		g, hosts = topology.FatTree(*arity, *arity/2, bps)
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topoName)
		os.Exit(2)
	}

	fmt.Printf("%s: %d nodes (%d hosts, %d switches), %d directed links\n",
		*topoName, g.NumNodes(), len(hosts), len(g.Switches()), g.NumLinks())

	if *pathsArg != "" {
		parts := strings.SplitN(*pathsArg, ",", 2)
		if len(parts) != 2 {
			fmt.Fprintln(os.Stderr, "-paths wants SRC,DST host indices")
			os.Exit(2)
		}
		si, err1 := strconv.Atoi(parts[0])
		di, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || si < 0 || di < 0 || si >= len(hosts) || di >= len(hosts) {
			fmt.Fprintf(os.Stderr, "host indices out of range [0,%d)\n", len(hosts))
			os.Exit(2)
		}
		paths := g.KShortestPaths(hosts[si], hosts[di], *k)
		fmt.Printf("%d shortest paths %s -> %s:\n", len(paths),
			g.Node(hosts[si]).Name, g.Node(hosts[di]).Name)
		for i, p := range paths {
			fmt.Printf("  [%d] %d hops: %s\n", i, p.Hops(), p.Format(g))
		}
	}

	if *dotPath != "" {
		if err := os.WriteFile(*dotPath, []byte(topology.ToDOT(g)), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing dot: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *dotPath)
	}
}
