// Command pythia-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	pythia-bench [-experiment all|fig1a|fig1b|fig3|fig4|fig5|overhead|hedera|
//	              scaleout|flowcomb|partitioner|trace|bounds|steady|ablations]
//	             [-full] [-steady] [-steady-horizon SEC] [-parallel N]
//	             [-svg fig1a.svg] [-svgdir DIR] [-json results.json]
//	             [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// -full runs the paper's published input sizes (240 GB sort, 8 GB Nutch,
// 60 GB integer sort); the default quick scale divides the sort inputs by 10
// so the whole suite completes in seconds. -svgdir emits the figure charts;
// -json emits machine-readable results for downstream analysis. -parallel
// bounds how many trials run concurrently (default 0 = one per CPU;
// -parallel 1 restores fully serial execution). Every trial is an
// independent deterministic simulation and results are reassembled in
// submission order, so the output is byte-identical at any setting.
//
// -cpuprofile and -memprofile write pprof profiles covering the selected
// experiments (`go tool pprof` reads them); `make profile` wraps the common
// hot-path capture. Profile with -parallel 1 when attributing cost to a
// single trial's call tree.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"pythia/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run: all, fig1a, fig1b, fig3, fig4, fig5, overhead, hedera, scaleout, flowcomb, partitioner, trace, bounds, steady, ablations")
	full := flag.Bool("full", false, "run at the paper's full input sizes")
	steady := flag.Bool("steady", false, "shorthand for -experiment steady (open-loop steady-state frontier)")
	steadyHorizon := flag.Float64("steady-horizon", 1800, "steady-state run horizon in simulated seconds")
	svgPath := flag.String("svg", "", "also write the fig1a diagram as SVG to this path")
	svgDir := flag.String("svgdir", "", "write figure SVGs (fig3/fig4/fig5) into this directory")
	jsonPath := flag.String("json", "", "also write all executed experiments' results as JSON to this path")
	reportPath := flag.String("report", "", "run the complete suite and write a markdown report to this path")
	parallel := flag.Int("parallel", 0, "max concurrent trials (0 = GOMAXPROCS, 1 = serial)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile covering the selected experiments to this path")
	memProfile := flag.String("memprofile", "", "write an allocation profile (after the experiments) to this path")
	flag.Parse()

	bench.SetParallelism(*parallel)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "creating %s: %v\n", *cpuProfile, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "starting CPU profile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Printf("wrote %s\n", *cpuProfile)
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "creating %s: %v\n", *memProfile, err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // flush dead objects so the profile shows live + cumulative truthfully
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "writing heap profile: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *memProfile)
		}()
	}

	if *reportPath != "" {
		scale := bench.QuickScale()
		if *full {
			scale = bench.PaperScale()
		}
		rep := bench.RunAll(scale)
		if err := os.WriteFile(*reportPath, []byte(rep.Markdown()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing report: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *reportPath)
		return
	}

	scale := bench.QuickScale()
	if *full {
		scale = bench.PaperScale()
	}

	results := map[string]any{}

	writeSVG := func(name, svg string) {
		if *svgDir == "" || svg == "" {
			return
		}
		path := *svgDir + "/" + name
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}

	run := map[string]func(){
		"fig1a": func() {
			ascii, svg := bench.RunFig1a()
			fmt.Println("=== Fig. 1a: toy sort sequence diagram ===")
			fmt.Println(ascii)
			results["fig1a"] = ascii
			if *svgPath != "" {
				if err := os.WriteFile(*svgPath, []byte(svg), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "writing svg: %v\n", err)
					os.Exit(1)
				}
				fmt.Printf("wrote %s\n", *svgPath)
			}
		},
		"fig1b": func() {
			r := bench.RunFig1b()
			results["fig1b"] = r
			fmt.Println("=== Fig. 1b: adversarial ECMP allocation (159 MB flow) ===")
			fmt.Printf("on 95%%-loaded path: %.1fs   on 25%%-loaded path: %.1fs (%.0fx)\n",
				r.AdversarialSec, r.OptimalSec, r.AdversarialSec/r.OptimalSec)
			fmt.Printf("ECMP can hash onto the hot path: %v; availability-based choice avoids it: %v\n",
				r.ECMPHitsHotPath, r.PythiaPickedCleanPath)
		},
		"fig3": func() {
			rows := bench.RunFig3(scale)
			results["fig3"] = rows
			fmt.Print(bench.FormatSpeedupTable("=== Fig. 3: Nutch indexing, Pythia vs ECMP ===", rows))
			writeSVG("fig3.svg", bench.SpeedupSVG("Fig.3 — Nutch indexing", rows))
		},
		"fig4": func() {
			rows := bench.RunFig4(scale)
			results["fig4"] = rows
			fmt.Print(bench.FormatSpeedupTable("=== Fig. 4: Sort, Pythia vs ECMP ===", rows))
			writeSVG("fig4.svg", bench.SpeedupSVG("Fig.4 — Sort", rows))
		},
		"fig5": func() {
			res := bench.RunFig5(scale)
			results["fig5"] = res
			fmt.Print(bench.FormatFig5(res))
			if len(res.PerHost) > 0 {
				// The paper plots a single server; pick the one with the
				// largest mean lead, as a representative.
				best := res.PerHost[0]
				for _, h := range res.PerHost {
					if h.MeanLeadSec > best.MeanLeadSec {
						best = h
					}
				}
				writeSVG("fig5.svg", bench.Fig5SVG(best))
			}
		},
		"overhead": func() {
			r := bench.RunOverhead(scale)
			results["overhead"] = r
			fmt.Println("=== §V-C: instrumentation overhead ===")
			fmt.Printf("mean CPU %.1f%%  max CPU %.1f%%  (paper: 2–5%%)\n",
				r.MeanCPUFraction*100, r.MaxCPUFraction*100)
			fmt.Printf("management-network traffic: %.1f KB over %d intents; %d OpenFlow rules installed\n",
				r.MgmtBytes/1e3, r.IntentsSent, r.RulesInstalled)
		},
		"hedera": func() {
			rows := bench.RunHederaComparison(scale)
			results["hedera"] = rows
			fmt.Println("=== E7: ECMP vs Hedera-like vs Pythia at 1:10 ===")
			fmt.Printf("%-8s %10s %12s %12s\n", "workload", "ECMP (s)", "Hedera (s)", "Pythia (s)")
			for _, r := range rows {
				fmt.Printf("%-8s %10.1f %12.1f %12.1f\n", r.Workload, r.ECMPSec, r.HederaSec, r.PythiaSec)
			}
		},
		"scaleout": func() {
			rows := bench.RunScaleOut(scale)
			results["scaleout"] = rows
			fmt.Print(bench.FormatScaleOutTable("=== E8: leaf-spine scale-out (sort, 1:10) ===", rows))
		},
		"flowcomb": func() {
			rows := bench.RunFlowCombComparison(scale)
			results["flowcomb"] = rows
			fmt.Print(bench.FormatRelatedTable("=== E9: FlowComb-like comparison (sort, 1:10) ===", rows))
		},
		"partitioner": func() {
			rows := bench.RunPartitionerComparison(scale)
			results["partitioner"] = rows
			fmt.Print(bench.FormatRelatedTable("=== E10: network-level vs application-level skew handling (skewed sort, 1:10) ===", rows))
		},
		"trace": func() {
			c := bench.RunTrace()
			results["trace"] = c
			fmt.Print(bench.FormatTraceComparison(c))
		},
		"bounds": func() {
			rows := bench.RunOptimalityGap(scale)
			results["bounds"] = rows
			fmt.Print(bench.FormatGapTable("=== E11: gap to the omniscient lower bound (sort) ===", rows))
			fmt.Println("(the bound ignores phase sequencing, so gaps at low contention are loose;")
			fmt.Println(" the signal is the trend: Pythia converges toward the bound as the network binds)")
		},
		"steady": func() {
			base := bench.SteadyConfig{
				Oversub:       bench.Oversub{Label: "1:10", Ratio: 10},
				HorizonSec:    *steadyHorizon,
				Seed:          7,
				CollectFlight: true,
			}
			rows, err := bench.RunSteadyFrontier(base, bench.DefaultSteadyRates())
			if err != nil {
				fmt.Fprintf(os.Stderr, "steady frontier: %v\n", err)
				os.Exit(1)
			}
			results["steady"] = rows
			fmt.Print(bench.FormatSteadyFrontier(rows))
		},
		"ablations": func() {
			a1 := bench.RunAblationKPaths(scale)
			a2 := bench.RunAblationAggregation(scale)
			a3 := bench.RunAblationPredictionDelay(scale)
			a4 := bench.RunAblationInstallLatency(scale)
			a5 := bench.RunAblationScope(scale)
			a6 := bench.RunAblationCriticality(scale)
			results["ablations"] = map[string]any{
				"kpaths": a1, "aggregation": a2, "prediction_delay": a3,
				"install_latency": a4, "scope": a5, "criticality": a6,
			}
			fmt.Print(bench.FormatAblationTable("=== A1: k-shortest paths (4 trunks, sort, 1:10) ===", a1))
			fmt.Println()
			fmt.Print(bench.FormatAblationTable("=== A2: flow aggregation (nutch, 1:20) ===", a2))
			fmt.Println()
			fmt.Print(bench.FormatAblationTable("=== A3: prediction delay (sort, 1:10) ===", a3))
			fmt.Println()
			fmt.Print(bench.FormatAblationTable("=== A4: rule-install latency (sort, 1:10) ===", a4))
			fmt.Println()
			fmt.Print(bench.FormatScopeTable("=== A5: aggregation scope — TCAM occupancy (sort, 1:10) ===", a5))
			fmt.Println()
			fmt.Print(bench.FormatAblationTable("=== A6: flow criticality (skewed sort, 1:10) ===", a6))
		},
	}

	order := []string{"fig1a", "fig1b", "fig3", "fig4", "fig5", "overhead", "hedera", "scaleout", "flowcomb", "partitioner", "trace", "bounds", "steady", "ablations"}
	if *steady {
		*experiment = "steady"
	}
	if *experiment == "all" {
		for _, name := range order {
			run[name]()
			fmt.Println()
		}
	} else {
		fn, ok := run[*experiment]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (want all, %v)\n", *experiment, order)
			os.Exit(2)
		}
		fn()
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(results, "", " ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "encoding results: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}
