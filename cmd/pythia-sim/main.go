// Command pythia-sim runs one ad-hoc simulated MapReduce job and prints its
// timing under a chosen scheduler and oversubscription level — the quickest
// way to explore the parameter space beyond the published figures.
//
// Usage:
//
//	pythia-sim [-workload sort|nutch|wordcount|intsort] [-input-gb N]
//	           [-reduces N] [-scheduler ecmp|pythia|hedera] [-oversub N]
//	           [-hosts N] [-trunks N] [-gbps N] [-seed N] [-compare]
package main

import (
	"flag"
	"fmt"
	"os"

	"pythia"
)

func main() {
	workloadName := flag.String("workload", "sort", "sort, nutch, wordcount or intsort")
	inputGB := flag.Float64("input-gb", 24, "input size in GB")
	reduces := flag.Int("reduces", 10, "number of reducers")
	scheduler := flag.String("scheduler", "pythia", "ecmp, pythia or hedera")
	oversub := flag.Int("oversub", 10, "oversubscription ratio N (0 = none)")
	hosts := flag.Int("hosts", 5, "hosts per rack")
	trunks := flag.Int("trunks", 2, "parallel inter-rack trunks")
	gbps := flag.Float64("gbps", 1, "link rate in Gbps")
	seed := flag.Uint64("seed", 1, "random seed")
	compare := flag.Bool("compare", false, "also run the ECMP baseline and report the speedup")
	specIn := flag.String("spec", "", "load the job spec from this JSON file instead of generating one")
	specOut := flag.String("dump-spec", "", "write the generated job spec as JSON to this file and exit")
	flag.Parse()

	var spec *pythia.JobSpec
	if *specIn != "" {
		data, err := os.ReadFile(*specIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reading spec: %v\n", err)
			os.Exit(1)
		}
		spec, err = pythia.LoadJobSpec(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
	} else {
		switch *workloadName {
		case "sort":
			spec = pythia.SortJob(*inputGB*pythia.GB, *reduces, *seed)
		case "nutch":
			spec = pythia.NutchJob(*inputGB*pythia.GB, *reduces, *seed)
		case "wordcount":
			spec = pythia.WordCountJob(*inputGB*pythia.GB, *reduces, *seed)
		case "intsort":
			spec = pythia.IntegerSortJob(*inputGB*pythia.GB, *reduces, *seed)
		default:
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workloadName)
			os.Exit(2)
		}
	}

	if *specOut != "" {
		data, err := pythia.SaveJobSpec(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*specOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing spec: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d maps, %d reducers)\n", *specOut, spec.NumMaps, spec.NumReduces)
		return
	}

	kinds := map[string]pythia.SchedulerKind{
		"ecmp": pythia.SchedulerECMP, "pythia": pythia.SchedulerPythia, "hedera": pythia.SchedulerHedera,
	}
	kind, ok := kinds[*scheduler]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scheduler %q\n", *scheduler)
		os.Exit(2)
	}

	opts := func(k pythia.SchedulerKind) []pythia.Option {
		return []pythia.Option{
			pythia.WithScheduler(k),
			pythia.WithOversubscription(*oversub),
			pythia.WithHostsPerRack(*hosts),
			pythia.WithTrunks(*trunks),
			pythia.WithLinkRateGbps(*gbps),
			pythia.WithSeed(*seed),
		}
	}

	cl := pythia.New(opts(kind)...)
	res := cl.RunJob(spec)
	fmt.Printf("%s %s: %.1fs total (maps %.1fs, shuffle barrier %.1fs, %.1f GB shuffled",
		kind, spec.Name, res.DurationSec, res.MapPhaseSec, res.ShuffleSec, res.ShuffleBytes/1e9)
	if kind == pythia.SchedulerPythia {
		fmt.Printf(", %d rules installed", res.RulesInstalled)
		rep := cl.Overhead()
		fmt.Printf(", %.1f%% instrumentation CPU", rep.MeanCPUFraction*100)
	}
	fmt.Println(")")

	if *compare && kind != pythia.SchedulerECMP {
		base := pythia.New(opts(pythia.SchedulerECMP)...).RunJob(spec)
		speedup := (base.DurationSec - res.DurationSec) / res.DurationSec
		fmt.Printf("ECMP baseline: %.1fs  →  speedup %.1f%%\n", base.DurationSec, speedup*100)
	}
}
