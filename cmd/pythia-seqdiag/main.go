// Command pythia-seqdiag renders MapReduce job sequence diagrams — the
// visualization tool behind the paper's Fig. 1a.
//
// Usage:
//
//	pythia-seqdiag [-workload toy|sort|nutch|wordcount] [-input-gb N]
//	               [-reduces N] [-scheduler ecmp|pythia|hedera]
//	               [-oversub N] [-width N] [-svg out.svg] [-seed N]
//	               [-trace out.json] [-chrome merged.json]
package main

import (
	"flag"
	"fmt"
	"os"

	"pythia"
)

func main() {
	workloadName := flag.String("workload", "toy", "toy, sort, nutch or wordcount")
	inputGB := flag.Float64("input-gb", 4, "input size in GB (ignored for toy)")
	reduces := flag.Int("reduces", 6, "number of reducers (ignored for toy)")
	scheduler := flag.String("scheduler", "ecmp", "ecmp, pythia or hedera")
	oversub := flag.Int("oversub", 0, "oversubscription ratio N (0 = none)")
	width := flag.Int("width", 100, "diagram width in columns")
	svgPath := flag.String("svg", "", "also write an SVG to this path")
	tracePath := flag.String("trace", "", "also write a Chrome trace-event JSON (chrome://tracing / Perfetto) to this path")
	chromePath := flag.String("chrome", "", "also write a merged Chrome trace (fabric spans + control-plane flight lanes) to this path")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	var kind pythia.SchedulerKind
	switch *scheduler {
	case "ecmp":
		kind = pythia.SchedulerECMP
	case "pythia":
		kind = pythia.SchedulerPythia
	case "hedera":
		kind = pythia.SchedulerHedera
	default:
		fmt.Fprintf(os.Stderr, "unknown scheduler %q\n", *scheduler)
		os.Exit(2)
	}

	var spec *pythia.JobSpec
	switch *workloadName {
	case "toy":
		spec = pythia.ToySortJob()
	case "sort":
		spec = pythia.SortJob(*inputGB*pythia.GB, *reduces, *seed)
	case "nutch":
		spec = pythia.NutchJob(*inputGB*pythia.GB, *reduces, *seed)
	case "wordcount":
		spec = pythia.WordCountJob(*inputGB*pythia.GB, *reduces, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workloadName)
		os.Exit(2)
	}

	opts := []pythia.Option{
		pythia.WithScheduler(kind),
		pythia.WithOversubscription(*oversub),
		pythia.WithSeed(*seed),
		pythia.WithSequenceRecording(),
	}
	if *chromePath != "" {
		opts = append(opts, pythia.WithFlightRecorder())
	}
	cl := pythia.New(opts...)
	res := cl.RunJob(spec)
	fmt.Println(cl.SequenceDiagram(*width))
	fmt.Printf("scheduler=%s oversub=%d job=%.1fs (maps %.1fs, shuffle barrier %.1fs)\n",
		kind, *oversub, res.DurationSec, res.MapPhaseSec, res.ShuffleSec)

	if *svgPath != "" {
		if err := os.WriteFile(*svgPath, []byte(cl.SequenceDiagramSVG()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing svg: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *svgPath)
	}
	if *tracePath != "" {
		data, err := cl.ChromeTrace()
		if err != nil {
			fmt.Fprintf(os.Stderr, "building trace: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*tracePath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *tracePath)
	}
	if *chromePath != "" {
		data, err := cl.MergedChromeTrace()
		if err != nil {
			fmt.Fprintf(os.Stderr, "building merged trace: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*chromePath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing merged trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *chromePath)
	}
}
