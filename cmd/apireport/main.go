// Apireport prints the exported API surface of the root pythia package as a
// sorted, deterministic signature list — one declaration per line. CI diffs
// the output against the committed api.txt so that any facade change (adding,
// removing, or altering an exported name) shows up as an explicit, reviewed
// diff instead of slipping through.
//
// It parses source directly with go/parser rather than shelling out to
// `go doc`, whose formatting varies across toolchain versions.
//
// Usage:
//
//	go run ./cmd/apireport [-dir .]        # print the report
//	go run ./cmd/apireport -check api.txt  # exit 1 if the surface drifted
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	dir := flag.String("dir", ".", "package directory to report on")
	check := flag.String("check", "", "compare against this golden file; exit 1 on drift")
	flag.Parse()

	report, err := apiReport(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apireport:", err)
		os.Exit(2)
	}
	if *check == "" {
		fmt.Print(report)
		return
	}
	want, err := os.ReadFile(*check)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apireport:", err)
		os.Exit(2)
	}
	if report != string(want) {
		fmt.Fprintf(os.Stderr, "apireport: API surface drifted from %s\n", *check)
		diff(string(want), report)
		fmt.Fprintf(os.Stderr, "regenerate with: go run ./cmd/apireport > %s\n", *check)
		os.Exit(1)
	}
	fmt.Printf("apireport: API surface matches %s\n", *check)
}

// apiReport renders every exported top-level declaration in dir, sorted.
func apiReport(dir string) (string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return "", err
	}
	var lines []string
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				lines = append(lines, declLines(fset, d)...)
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n", nil
}

// declLines returns one rendered line per exported name introduced by d.
func declLines(fset *token.FileSet, d ast.Decl) []string {
	var out []string
	switch d := d.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		if d.Recv != nil && !exportedRecv(d.Recv) {
			return nil
		}
		fn := *d
		fn.Doc = nil
		fn.Body = nil
		out = append(out, render(fset, &fn))
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				ts := *s
				ts.Doc, ts.Comment = nil, nil
				if st, ok := ts.Type.(*ast.StructType); ok {
					ts.Type = exportedFields(st)
				}
				out = append(out, "type "+render(fset, &ts))
			case *ast.ValueSpec:
				kw := "var"
				if d.Tok == token.CONST {
					kw = "const"
				}
				for _, n := range s.Names {
					if !n.IsExported() {
						continue
					}
					line := kw + " " + n.Name
					if s.Type != nil {
						line += " " + render(fset, s.Type)
					}
					out = append(out, line)
				}
			}
		}
	}
	return out
}

// exportedFields strips unexported fields so internal layout changes don't
// churn the report.
func exportedFields(st *ast.StructType) *ast.StructType {
	kept := &ast.FieldList{}
	for _, f := range st.Fields.List {
		if len(f.Names) == 0 { // embedded
			kept.List = append(kept.List, f)
			continue
		}
		var names []*ast.Ident
		for _, n := range f.Names {
			if n.IsExported() {
				names = append(names, n)
			}
		}
		if len(names) > 0 {
			g := *f
			g.Names, g.Doc, g.Comment, g.Tag = names, nil, nil, nil
			kept.List = append(kept.List, &g)
		}
	}
	return &ast.StructType{Struct: st.Struct, Fields: kept}
}

func exportedRecv(recv *ast.FieldList) bool {
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		case *ast.IndexExpr:
			t = x.X
		default:
			return true
		}
	}
}

func render(fset *token.FileSet, node any) string {
	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.UseSpaces, Tabwidth: 4}
	if err := cfg.Fprint(&buf, fset, node); err != nil {
		return fmt.Sprintf("<render error: %v>", err)
	}
	// Collapse multi-line struct bodies to one line for a stable diff unit.
	fields := strings.Fields(buf.String())
	return strings.Join(fields, " ")
}

// diff prints a minimal line diff (golden vs current) to stderr.
func diff(want, got string) {
	wl := strings.Split(strings.TrimRight(want, "\n"), "\n")
	gl := strings.Split(strings.TrimRight(got, "\n"), "\n")
	wset := make(map[string]bool, len(wl))
	for _, l := range wl {
		wset[l] = true
	}
	gset := make(map[string]bool, len(gl))
	for _, l := range gl {
		gset[l] = true
	}
	for _, l := range wl {
		if !gset[l] {
			fmt.Fprintln(os.Stderr, "- "+l)
		}
	}
	for _, l := range gl {
		if !wset[l] {
			fmt.Fprintln(os.Stderr, "+ "+l)
		}
	}
}
