// Command bench2json converts `go test -bench` text output into a stable
// JSON artifact, and compares two such artifacts.
//
// Emit mode (default) reads benchmark output on stdin and writes a JSON
// array of {name, iterations, ns_per_op, bytes_per_op, allocs_per_op}
// records to stdout (or -o FILE):
//
//	go test -bench=ScaleFatTree -benchmem -run='^$' . | bench2json -o BENCH_scale.json
//
// Compare mode takes two artifacts and prints a per-benchmark delta table,
// exiting nonzero if any benchmark present in both files slowed down by
// more than -max-regress percent:
//
//	bench2json -compare BENCH_scale_old.json BENCH_scale.json -max-regress 20
//
// The tool is intentionally line-oriented and stdlib-only so CI can run it
// without any extra tooling.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line. Custom b.ReportMetric units (anything
// beyond the standard ns/op, B/op, allocs/op triple — e.g. sim-job-s,
// lead-p50-s, late-frac-%) land in Metrics keyed by unit.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("o", "", "write JSON to this file instead of stdout")
	compare := flag.Bool("compare", false, "compare two JSON artifacts: bench2json -compare OLD NEW")
	maxRegress := flag.Float64("max-regress", 0, "in compare mode, exit 1 if any ns/op regressed by more than this percent (0 = report only)")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: bench2json -compare OLD.json NEW.json")
			os.Exit(2)
		}
		if err := runCompare(flag.Arg(0), flag.Arg(1), *maxRegress); err != nil {
			fmt.Fprintln(os.Stderr, "bench2json:", err)
			os.Exit(1)
		}
		return
	}

	results, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "bench2json: no benchmark lines on stdin")
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}

// parseBench extracts benchmark result lines from go test output. A result
// line looks like:
//
//	BenchmarkScaleFatTree/k8/hosts128/incremental-8  3  41031201 ns/op  5102 B/op  37 allocs/op
func parseBench(r *os.File) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		iters, err1 := strconv.ParseInt(fields[1], 10, 64)
		ns, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		res := Result{Name: fields[0], Iterations: iters, NsPerOp: ns}
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[unit] = v
			}
		}
		results = append(results, res)
	}
	return results, sc.Err()
}

func load(path string) (map[string]Result, []string, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var list []Result
	if err := json.Unmarshal(buf, &list); err != nil {
		return nil, nil, fmt.Errorf("%s: %v", path, err)
	}
	m := make(map[string]Result, len(list))
	order := make([]string, 0, len(list))
	for _, r := range list {
		if _, dup := m[r.Name]; !dup {
			order = append(order, r.Name)
		}
		m[r.Name] = r
	}
	return m, order, nil
}

func runCompare(oldPath, newPath string, maxRegress float64) error {
	oldM, _, err := load(oldPath)
	if err != nil {
		return err
	}
	newM, order, err := load(newPath)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "%-60s %14s %14s %9s %10s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs")
	regressed := false
	for _, name := range order {
		nw := newM[name]
		old, ok := oldM[name]
		if !ok {
			fmt.Fprintf(w, "%-60s %14s %14.0f %9s %10.0f\n", name, "-", nw.NsPerOp, "new", nw.AllocsOp)
			continue
		}
		pct := 0.0
		if old.NsPerOp > 0 {
			pct = (nw.NsPerOp - old.NsPerOp) / old.NsPerOp * 100
		}
		fmt.Fprintf(w, "%-60s %14.0f %14.0f %+8.1f%% %10.0f\n",
			name, old.NsPerOp, nw.NsPerOp, pct, nw.AllocsOp)
		if maxRegress > 0 && pct > maxRegress {
			regressed = true
		}
	}
	w.Flush()
	if regressed {
		return fmt.Errorf("ns/op regression beyond %.1f%% threshold", maxRegress)
	}
	return nil
}
