package pythia

import (
	"pythia/internal/core"
	"pythia/internal/sim"
)

// Engine options: scheduler choice and simulator internals — see the
// package doc's "Configuring a cluster" index.

// WithScheduler selects the flow allocator (default ECMP).
func WithScheduler(k SchedulerKind) Option { return func(c *config) { c.scheduler = k } }

// WithSeed fixes all randomness (ECMP hash salt, workload jitter).
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithKShortestPaths sets Pythia's per-pair path diversity (default 4).
func WithKShortestPaths(k int) Option { return func(c *config) { c.pythiaCfg.K = k } }

// WithRackAggregation switches Pythia to rack-pair (prefix) rules: one
// steering rule per rack pair instead of per server pair, conserving switch
// TCAM as §IV proposes for large-scale deployments.
func WithRackAggregation() Option {
	return func(c *config) { c.pythiaCfg.Scope = core.ScopeRackPair }
}

// WithCriticality enables the §VI flow-priority criterion: aggregates
// feeding the reducer with the largest outstanding shuffle backlog are
// placed first.
func WithCriticality() Option {
	return func(c *config) { c.pythiaCfg.UseCriticality = true }
}

// WithCollectorShards partitions the Pythia collector's per-job state
// (intents, bookings, dedup tables) across n shards, the layout the online
// service (NewServer) uses for concurrent ingest. Placement decisions merge
// in a deterministic order, so results are bit-identical at any shard count
// (default 1).
func WithCollectorShards(n int) Option { return func(c *config) { c.pythiaCfg.Shards = n } }

// WithExplicitControlPlane routes prediction notifications and OpenFlow
// FLOW_MOD messages over a modeled out-of-band management network
// (per-sender FIFO serialization and transmission time) instead of fixed
// latencies — the complete §III architecture.
func WithExplicitControlPlane() Option { return func(c *config) { c.explicitCP = true } }

// WithDeadline bounds a TryRunJobs run to the given simulated seconds.
// Without it, a run that cannot make progress — e.g. a partitioned network
// with a reducer forever retrying an unroutable fetch — would loop in
// virtual time; with it, TryRunJobs stops at the deadline and reports the
// incomplete jobs as an ErrUnfinished error.
func WithDeadline(sec float64) Option { return func(c *config) { c.deadline = sec } }

// SchedulerMode selects the discrete-event kernel's pending-event structure.
// Both modes deliver events in the identical order (golden-tested); they
// differ only in cost per scheduling operation.
type SchedulerMode = sim.SchedulerMode

const (
	// SchedCalendar (the default) is a bucketed calendar queue: O(1)
	// amortized schedule/fire with lazy resizing.
	SchedCalendar = sim.SchedCalendar
	// SchedHeap is the original binary-heap queue, kept as the reference.
	SchedHeap = sim.SchedHeap
)

// WithSchedulerMode selects the event-kernel scheduler (default
// SchedCalendar). Results are bit-identical either way; benchmarks use the
// knob to compare kernel generations without reaching into internal packages.
func WithSchedulerMode(m SchedulerMode) Option { return func(c *config) { c.sched = m } }

// WithAllocWorkers shards each network allocation pass across its connected
// components onto a bounded worker pool of the given width (default 1 =
// serial). Components touch disjoint links and flows and merge in a
// deterministic order, so any width produces bit-identical schedules; widths
// above the per-pass component count simply leave workers idle.
func WithAllocWorkers(n int) Option { return func(c *config) { c.allocWorkers = n } }
