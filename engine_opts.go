package pythia

import "pythia/internal/sim"

// SchedulerMode selects the discrete-event kernel's pending-event structure.
// Both modes deliver events in the identical order (golden-tested); they
// differ only in cost per scheduling operation.
type SchedulerMode = sim.SchedulerMode

const (
	// SchedCalendar (the default) is a bucketed calendar queue: O(1)
	// amortized schedule/fire with lazy resizing.
	SchedCalendar = sim.SchedCalendar
	// SchedHeap is the original binary-heap queue, kept as the reference.
	SchedHeap = sim.SchedHeap
)

// WithSchedulerMode selects the event-kernel scheduler (default
// SchedCalendar). Results are bit-identical either way; benchmarks use the
// knob to compare kernel generations without reaching into internal packages.
func WithSchedulerMode(m SchedulerMode) Option { return func(c *config) { c.sched = m } }

// WithAllocWorkers shards each network allocation pass across its connected
// components onto a bounded worker pool of the given width (default 1 =
// serial). Components touch disjoint links and flows and merge in a
// deterministic order, so any width produces bit-identical schedules; widths
// above the per-pass component count simply leave workers idle.
func WithAllocWorkers(n int) Option { return func(c *config) { c.allocWorkers = n } }
