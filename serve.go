package pythia

import "pythia/internal/serve"

// Online serving facade: the sharded collector behind an HTTP/JSON service
// instead of an in-process Cluster. See internal/serve for the wire
// protocol and cmd/pythia-serve for the ready-made binary.

// ServeConfig shapes the online serving stack: collector shard and worker
// counts, queue/batch bounds, booking TTL, and the simulated fabric
// standing in for the datacenter. The zero value is usable; unset fields
// take the same defaults cmd/pythia-serve ships with.
type ServeConfig = serve.Config

// Server is the online collector service. Start it, mount Handler on any
// http mux or call ListenAndServe, and drain with Shutdown.
type Server = serve.Server

// NewServer builds an online collector service:
//
//	srv, err := pythia.NewServer(pythia.ServeConfig{Shards: 4})
//	if err != nil { ... }
//	srv.Start()
//	go srv.ListenAndServe(":8080")
//	...
//	srv.Shutdown(ctx)
func NewServer(cfg ServeConfig) (*Server, error) { return serve.New(cfg) }
