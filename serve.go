package pythia

import "pythia/internal/serve"

// Online serving facade: the sharded collector behind an HTTP/JSON service
// instead of an in-process Cluster. See internal/serve for the wire
// protocol and cmd/pythia-serve for the ready-made binary.

// ServeConfig shapes the online serving stack: collector shard and worker
// counts, queue/batch bounds, booking TTL, the simulated fabric standing in
// for the datacenter, and the operations plane (Metrics for GET /metrics,
// Pprof, Logger for structured request logs, FlightEvents for the live
// flight recorder). The zero value is usable; unset fields take the same
// defaults cmd/pythia-serve ships with.
type ServeConfig = serve.Config

// Server is the online collector service. Start it, mount Handler on any
// http mux or call ListenAndServe, and drain with Shutdown.
type Server = serve.Server

// NewServer builds an online collector service:
//
//	srv, err := pythia.NewServer(pythia.ServeConfig{Shards: 4})
//	if err != nil { ... }
//	srv.Start()
//	go srv.ListenAndServe(":8080")
//	...
//	srv.Shutdown(ctx)
func NewServer(cfg ServeConfig) (*Server, error) { return serve.New(cfg) }

// Client is a resilient client for the serving API: per-attempt timeouts,
// exponential backoff with jitter honoring Retry-After, and context
// propagation. Retried requests are exactly-once by protocol construction
// (intent dedup, idempotent reducer placement), even across a server crash
// and recovery.
type Client = serve.Client

// ClientConfig tunes Client retry behavior; the zero value is usable.
type ClientConfig = serve.ClientConfig

// ClientStats counts a Client's own retry behavior (attempts, retries,
// Retry-After sleeps, transport and permanent errors) — the client-side view
// of server health, via Client.Stats.
type ClientStats = serve.ClientStats

// CrashPoint identifies a batch-loop crash-injection site for
// ServeConfig.CrashHook (chaos testing of the durable serving plane).
type CrashPoint = serve.CrashPoint

// Crash-injection sites: before the batch reaches the journal, between
// journal append and collector commit, and after commit but before clients
// are answered.
const (
	CrashBeforeAppend = serve.CrashBeforeAppend
	CrashAfterAppend  = serve.CrashAfterAppend
	CrashAfterCommit  = serve.CrashAfterCommit
)

// NewClient builds a retrying client for the server at baseURL:
//
//	cl := pythia.NewClient("http://127.0.0.1:8080", pythia.ClientConfig{})
//	resp, err := cl.Ingest(ctx, &pythia.IngestRequest{...})
func NewClient(baseURL string, cfg ClientConfig) *Client { return serve.NewClient(baseURL, cfg) }

// Wire types for Client calls.
type (
	// IngestRequest is one batch of collector operations.
	IngestRequest = serve.IngestRequest
	// IngestResponse summarizes the request's dispositions.
	IngestResponse = serve.IngestResponse
	// StatsResponse is the /v1/stats reply.
	StatsResponse = serve.StatsResponse
	// WireIntent is one shuffle-spill prediction.
	WireIntent = serve.WireIntent
	// WireReducerUp reports reducer placement.
	WireReducerUp = serve.WireReducerUp
)
