// Package pythia is a faithful, fully simulated reproduction of
// "Pythia: Faster Big Data in Motion through Predictive Software-Defined
// Network Optimization at Runtime" (IPDPS 2014).
//
// It bundles a discrete-event Hadoop MapReduce runtime, a flow-level
// multi-path datacenter network with max-min fair sharing, an OpenFlow-style
// SDN control plane, Pythia's shuffle-intent prediction middleware and
// network scheduler, and the ECMP and Hedera-like baselines — everything
// needed to rerun the paper's evaluation on a laptop.
//
// The root package is a facade over internal/: build a Cluster, run
// workloads shaped like the paper's benchmarks, and compare schedulers.
//
//	cl := pythia.New(pythia.WithScheduler(pythia.SchedulerPythia),
//	    pythia.WithOversubscription(10))
//	res := cl.RunJob(pythia.SortJob(24*pythia.GB, 10, 1))
//	fmt.Printf("sort finished in %.1fs\n", res.DurationSec)
//
// # Configuring a cluster
//
// New accepts functional options, grouped by the subsystem they shape (each
// group lives in the correspondingly named source file):
//
//   - Topology — the fabric under test: WithTopology (two-rack, leaf-spine,
//     fat-tree), WithHostsPerRack, WithTrunks, WithLinkRateGbps,
//     WithOversubscription.
//   - Engine — scheduler choice and simulator internals: WithScheduler,
//     WithSeed, WithKShortestPaths, WithRackAggregation, WithCriticality,
//     WithCollectorShards, WithExplicitControlPlane, WithDeadline,
//     WithSchedulerMode, WithAllocMode, WithAllocWorkers.
//   - Faults — failure and degradation injection: WithControlPlaneFaults,
//     WithMgmtFaults, WithMonitorFaults, WithPredictionError,
//     WithBookingTTL.
//   - Observability — pure observers that never change results:
//     WithSequenceRecording, WithFlightRecorder.
//   - Workload — Hadoop-side behavior: WithReduceSlowstart,
//     WithParallelCopies, WithHDFS, WithIncast.
//
// # Panicking and Try entry points
//
// The convenience runners RunJob, RunJobs and Compare panic on submission
// errors and starved jobs — the right contract for examples and benchmarks
// where failure is a bug. Every panicking path has a Try counterpart with
// an error return (TryRunJob, TryRunJobs, TryCompare, TryRunUntil); runs
// that end with unfinished jobs report errors matching ErrUnfinished.
//
// # Online serving
//
// NewServer exposes the same collector as a standalone HTTP/JSON service
// (see ServeConfig and cmd/pythia-serve); the Cluster facade embeds the
// collector in-process instead.
package pythia

import (
	"errors"
	"fmt"

	"pythia/internal/core"
	"pythia/internal/ecmp"
	"pythia/internal/flight"
	"pythia/internal/hadoop"
	"pythia/internal/hdfs"
	"pythia/internal/hedera"
	"pythia/internal/instrument"
	"pythia/internal/mgmtnet"
	"pythia/internal/netsim"
	"pythia/internal/openflow"
	"pythia/internal/sim"
	"pythia/internal/topology"
	"pythia/internal/trace"
	"pythia/internal/workload"
)

// Byte-size helpers.
const (
	MB = workload.MB
	GB = workload.GB
)

// SchedulerKind selects the shuffle flow-allocation scheme.
type SchedulerKind int

const (
	// SchedulerECMP is the load-unaware baseline (five-tuple hash).
	SchedulerECMP SchedulerKind = iota
	// SchedulerPythia is the paper's predictive SDN scheduler.
	SchedulerPythia
	// SchedulerHedera is the reactive load-aware baseline.
	SchedulerHedera
)

func (k SchedulerKind) String() string {
	switch k {
	case SchedulerECMP:
		return "ECMP"
	case SchedulerPythia:
		return "Pythia"
	case SchedulerHedera:
		return "Hedera"
	}
	return fmt.Sprintf("SchedulerKind(%d)", int(k))
}

// JobSpec aliases the simulator's job description; build one with SortJob,
// NutchJob, WordCountJob, ToySortJob or CustomJob.
type JobSpec = hadoop.JobSpec

// config collects options.
type config struct {
	scheduler    SchedulerKind
	hostsPerRack int
	trunks       int
	linkBps      float64
	oversub      int
	seed         uint64
	hadoopCfg    hadoop.Config
	pythiaCfg    core.Config
	record       bool
	flight       bool
	hdfs         bool
	explicitCP   bool

	incastThreshold int
	incastFactor    float64
	incastFloor     float64

	topo         *TopologySpec
	allocMode    *AllocMode
	sched        sim.SchedulerMode
	allocWorkers int
	cpFaults     *ControlPlaneFaults
	deadline     float64

	mgmtFaults    *MgmtFaults
	monFaults     *MonitorFaults
	predErrFactor float64
	predErrSeed   uint64
	bookingTTLSec float64
}

// Option customizes a Cluster. Options are defined beside the subsystem
// they configure — see the package doc's "Configuring a cluster" index.
type Option func(*config)

// Cluster is a wired simulation stack: network + SDN controller + scheduler
// + Hadoop + instrumentation.
type Cluster struct {
	eng      *sim.Engine
	net      *netsim.Network
	g        *topology.Graph
	hosts    []topology.NodeID
	trunks   []topology.LinkID
	cluster  *hadoop.Cluster
	mw       *instrument.Middleware
	mn       *mgmtnet.Network
	ofc      *openflow.Controller
	py       *core.Pythia
	al       *ecmp.Allocator // plain-ECMP scheduler only
	hed      *hedera.Scheduler
	recorder *trace.Recorder
	fr       *flight.Recorder
	fs       *hdfs.FileSystem
	kind     SchedulerKind
	deadline float64

	// Per-job rule accounting: rules installed between two job
	// completions are attributed to the later job, so JobResult reports
	// deltas instead of the controller's cumulative counter.
	jobRules  map[int]uint64
	rulesSeen uint64

	// doneJobs records completed job IDs for post-run leak detection
	// (FaultReport.LeakedBookings).
	doneJobs []int

	// timed holds SubmitAt entries awaiting a TryRunUntil report.
	timed []*timedSubmission
}

// New builds a cluster on the paper's two-rack testbed topology.
func New(opts ...Option) *Cluster {
	cfg := config{
		scheduler:    SchedulerECMP,
		hostsPerRack: 5,
		trunks:       2,
		linkBps:      topology.Gbps,
		seed:         1,
	}
	for _, o := range opts {
		o(&cfg)
	}
	eng := sim.NewEngineMode(cfg.sched)
	var (
		g      *topology.Graph
		hosts  []topology.NodeID
		trunks []topology.LinkID
	)
	if cfg.topo != nil {
		g, hosts, trunks = cfg.topo.build(cfg.linkBps)
		cfg.hostsPerRack = cfg.topo.hostsPerRack
	} else {
		g, hosts, trunks = topology.TwoRack(cfg.hostsPerRack, cfg.trunks, cfg.linkBps)
	}
	net := netsim.New(eng, g)
	if cfg.allocMode != nil {
		net.SetAllocMode(*cfg.allocMode)
	}
	if cfg.allocWorkers > 1 {
		net.SetAllocWorkers(cfg.allocWorkers)
	}
	applyBackground(net, trunks, cfg)
	if cfg.incastThreshold > 0 {
		net.EnableIncast(cfg.incastThreshold, cfg.incastFactor, cfg.incastFloor)
	}

	c := &Cluster{
		eng: eng, net: net, g: g, hosts: hosts, trunks: trunks,
		kind: cfg.scheduler, deadline: cfg.deadline,
		jobRules: make(map[int]uint64),
	}
	var resolver hadoop.PathResolver
	var sink instrument.Sink = dropSink{}
	var mn *mgmtnet.Network
	icfg := instrument.Config{}
	if cfg.flight {
		// Wire every plane only when enabled: a typed-nil *Recorder in the
		// Sink interface fields would defeat the producers' nil checks.
		c.fr = flight.NewRecorder(eng)
		net.SetFlightRecorder(c.fr)
		icfg.Flight = c.fr
	}
	if cfg.explicitCP || cfg.mgmtFaults != nil {
		// Management faults need a management network to fault.
		mn = mgmtnet.New(eng, mgmtnet.Config{})
		icfg.Mgmt = mn
		c.mn = mn
		if c.fr != nil {
			mn.SetFlightRecorder(c.fr)
		}
	}
	if cfg.mgmtFaults != nil {
		mn.SetFaults(cfg.mgmtFaults.toInternal())
	}
	if cfg.monFaults != nil {
		mf := cfg.monFaults.toInternal()
		icfg.MonitorFaults = &mf
	}
	icfg.PredictionErrorFactor = cfg.predErrFactor
	icfg.PredictionErrorSeed = cfg.predErrSeed
	cfg.pythiaCfg.BookingTTL = sim.Duration(cfg.bookingTTLSec)
	// Richer fabrics have more equal-cost diversity than the two trunks of
	// the default testbed; let ECMP spread across it.
	ecmpK := 2
	if cfg.topo != nil {
		ecmpK = 4
	}
	switch cfg.scheduler {
	case SchedulerECMP:
		c.al = ecmp.New(g, ecmpK, cfg.seed)
		// Fault plane: re-hash in-flight shuffle flows off dead paths.
		c.al.AttachNetwork(net, netsim.Shuffle)
		resolver = c.al
	case SchedulerPythia:
		c.ofc = openflow.NewController(eng, net, 0)
		if mn != nil {
			c.ofc.SetManagementNetwork(mn, topology.NodeID(-1))
		}
		if cfg.cpFaults != nil {
			c.ofc.SetFaults(cfg.cpFaults.toInternal())
		}
		c.py = core.New(eng, net, c.ofc, cfg.pythiaCfg.EnableAggregation())
		if c.fr != nil {
			c.ofc.SetFlightRecorder(c.fr)
			c.py.SetFlightRecorder(c.fr)
		}
		resolver = c.ofc
		sink = c.py
	case SchedulerHedera:
		c.hed = hedera.New(eng, net, cfg.seed, hedera.Config{})
		resolver = c.hed
	default:
		panic(fmt.Sprintf("pythia: unknown scheduler %v", cfg.scheduler))
	}
	c.cluster = hadoop.NewCluster(eng, net, hosts, resolver, cfg.hadoopCfg)
	c.cluster.OnJobDone(func(j *hadoop.Job) {
		c.doneJobs = append(c.doneJobs, j.ID)
		if c.ofc == nil {
			return
		}
		c.jobRules[j.ID] = c.ofc.RulesInstalled - c.rulesSeen
		c.rulesSeen = c.ofc.RulesInstalled
	})
	c.mw = instrument.Attach(eng, c.cluster, sink, icfg)
	if cfg.record {
		c.recorder = trace.Attach(eng, c.cluster)
	}
	if cfg.hdfs {
		// HDFS traffic always rides the default pipeline (distinct hash
		// salt so it does not mirror the shuffle's ECMP draws); its own
		// allocator rescues stranded storage flows on topology events.
		hal := ecmp.New(g, ecmpK, cfg.seed^0xD47A)
		hal.AttachNetwork(net, netsim.Storage)
		c.fs = hdfs.New(eng, net, hosts, hal, hdfs.Config{}, cfg.seed)
		c.cluster.SetOutputSink(c.fs)
	}
	return c
}

// HDFSBytesWritten reports total bytes landed on datanodes (all replicas),
// or 0 without WithHDFS.
func (c *Cluster) HDFSBytesWritten() float64 {
	if c.fs == nil {
		return 0
	}
	return c.fs.BytesWritten
}

func applyBackground(net *netsim.Network, trunks []topology.LinkID, cfg config) {
	if cfg.oversub <= 0 {
		return
	}
	g := net.Graph()
	spareTotal := float64(cfg.hostsPerRack) * cfg.linkBps / float64(cfg.oversub)
	if max := float64(len(trunks)) * cfg.linkBps; spareTotal > max {
		spareTotal = max
	}
	// 30/70 split for two trunks, 1:2:…:n proportions otherwise — the
	// same imbalance the experiment harness uses.
	fracs := make([]float64, len(trunks))
	if len(trunks) == 2 {
		fracs[0], fracs[1] = 0.30, 0.70
	} else {
		sum := 0.0
		for i := range fracs {
			fracs[i] = float64(i + 1)
			sum += fracs[i]
		}
		for i := range fracs {
			fracs[i] /= sum
		}
	}
	for i, tr := range trunks {
		spare := spareTotal * fracs[i]
		if spare > cfg.linkBps {
			spare = cfg.linkBps
		}
		net.SetBackground(tr, cfg.linkBps-spare)
		if r, ok := g.Reverse(tr); ok {
			net.SetBackground(r, cfg.linkBps-spare)
		}
	}
}

type dropSink struct{}

func (dropSink) ShuffleIntent(instrument.Intent) {}
func (dropSink) ReducerUp(instrument.ReducerUp)  {}

// JobResult summarizes one completed job.
type JobResult struct {
	Name string
	// DurationSec is submission-to-completion time in simulated seconds.
	DurationSec float64
	// MapPhaseSec is when the last map finished.
	MapPhaseSec float64
	// ShuffleSec is when the last reducer passed the shuffle barrier.
	ShuffleSec float64
	// ShuffleBytes is the total intermediate payload moved.
	ShuffleBytes float64
	// RulesInstalled counts OpenFlow rules programmed (Pythia only).
	RulesInstalled uint64
}

// ErrUnfinished reports jobs still incomplete when a run stopped — a
// starved network, an unroutable fetch, or a WithDeadline/TryRunUntil
// horizon reached first. Errors from TryRunJob, TryRunJobs, TryRunUntil
// and TryCompare match it with errors.Is; the partial results alongside
// the error hold whatever did complete.
var ErrUnfinished = errors.New("jobs did not complete")

// RunJob submits the spec and drives the simulation until it completes. It
// panics on submission errors and starved jobs; use TryRunJob when
// injecting faults that may legitimately prevent completion.
func (c *Cluster) RunJob(spec *JobSpec) JobResult {
	rs := c.RunJobs(spec)
	return rs[0]
}

// RunJobs is TryRunJobs with the legacy panic-on-failure contract.
func (c *Cluster) RunJobs(specs ...*JobSpec) []JobResult {
	out, err := c.TryRunJobs(specs...)
	if err != nil {
		panic(fmt.Sprintf("pythia: %v", err))
	}
	return out
}

// TryRunJob is RunJob returning an error instead of panicking.
func (c *Cluster) TryRunJob(spec *JobSpec) (JobResult, error) {
	rs, err := c.TryRunJobs(spec)
	if len(rs) == 0 {
		return JobResult{}, err
	}
	return rs[0], err
}

// TryRunJobs submits several jobs at once (they contend for task slots and
// network like co-scheduled production jobs — Pythia's collector tracks
// each job's predictions independently) and runs the simulation until all
// complete or the WithDeadline bound is hit. Results are returned in
// submission order; jobs that did not finish are reported in the error and
// have a zero JobResult. Each result's RulesInstalled is the job's own
// delta of controller rule installs, not the cumulative counter.
func (c *Cluster) TryRunJobs(specs ...*JobSpec) ([]JobResult, error) {
	jobs := make([]*hadoop.Job, len(specs))
	for i, spec := range specs {
		job, err := c.cluster.Submit(spec)
		if err != nil {
			return nil, fmt.Errorf("submit %q: %w", spec.Name, err)
		}
		jobs[i] = job
	}
	if c.deadline > 0 {
		c.eng.RunUntil(sim.Time(c.deadline))
	} else {
		c.eng.Run()
	}
	out := make([]JobResult, len(specs))
	var starved []string
	for i, job := range jobs {
		if !job.Done {
			starved = append(starved, specs[i].Name)
			continue
		}
		out[i] = JobResult{
			Name:           specs[i].Name,
			DurationSec:    float64(job.Duration()),
			MapPhaseSec:    float64(job.MapPhaseEnd.Sub(job.Submitted)),
			ShuffleSec:     float64(job.ShuffleEnd.Sub(job.Submitted)),
			ShuffleBytes:   specs[i].TotalShuffleBytes(),
			RulesInstalled: c.jobRules[job.ID],
		}
	}
	if len(starved) > 0 {
		return out, fmt.Errorf("%d of %d %w (starved network or deadline hit): %v",
			len(starved), len(jobs), ErrUnfinished, starved)
	}
	return out, nil
}

// SequenceDiagram renders the recorded job as an ASCII Gantt chart, width
// columns wide (requires WithSequenceRecording and a completed RunJob). The
// SVG variant is SequenceDiagramSVG.
func (c *Cluster) SequenceDiagram(width int) string {
	if c.recorder == nil {
		return ""
	}
	return c.recorder.Render(width)
}

// SequenceDiagramSVG renders the recorded job as an SVG document.
func (c *Cluster) SequenceDiagramSVG() string {
	if c.recorder == nil {
		return ""
	}
	return c.recorder.RenderSVG()
}

// ChromeTrace exports the recorded job as Chrome trace-event JSON, loadable
// in chrome://tracing or Perfetto (requires WithSequenceRecording).
func (c *Cluster) ChromeTrace() ([]byte, error) {
	if c.recorder == nil {
		return nil, nil
	}
	return c.recorder.ChromeTrace()
}

// OverheadReport summarizes the instrumentation middleware's cost (§V-C).
type OverheadReport struct {
	MeanCPUFraction float64
	MaxCPUFraction  float64
	ManagementBytes float64
	Spills          int
}

// Overhead reports instrumentation cost accumulated so far.
func (c *Cluster) Overhead() OverheadReport {
	rep := c.mw.Overhead()
	return OverheadReport{
		MeanCPUFraction: rep.MeanCPUFraction,
		MaxCPUFraction:  rep.MaxCPUFraction,
		ManagementBytes: rep.MgmtBytes,
		Spills:          rep.Spills,
	}
}

// Scheduler reports which allocator this cluster runs.
func (c *Cluster) Scheduler() SchedulerKind { return c.kind }

// SortJob builds a HiBench-Sort-like job (the paper ran 240 GB).
func SortJob(inputBytes float64, numReduces int, seed uint64) *JobSpec {
	return workload.Sort(inputBytes, numReduces, seed)
}

// NutchJob builds a Nutch-indexing-like job (the paper ran 8 GB / 5M pages).
func NutchJob(inputBytes float64, numReduces int, seed uint64) *JobSpec {
	return workload.Nutch(inputBytes, numReduces, seed)
}

// WordCountJob builds an aggregation-heavy job with a tiny shuffle.
func WordCountJob(inputBytes float64, numReduces int, seed uint64) *JobSpec {
	return workload.WordCount(inputBytes, numReduces, seed)
}

// ToySortJob is the paper's Fig. 1a motivational job: 3 maps, 2 reducers,
// 5:1 reducer skew.
func ToySortJob() *JobSpec { return workload.ToySort() }

// IntegerSortJob is the Fig. 5 workload (the paper ran 60 GB).
func IntegerSortJob(inputBytes float64, numReduces int, seed uint64) *JobSpec {
	return workload.IntegerSort(inputBytes, numReduces, seed)
}

// WorkloadConfig re-exports the generic workload generator's knobs.
type WorkloadConfig = workload.Config

// CustomJob builds a job from explicit workload parameters.
func CustomJob(cfg WorkloadConfig) *JobSpec { return workload.Generate(cfg) }

// SaveJobSpec serializes a job spec to JSON for archiving/replay.
func SaveJobSpec(spec *JobSpec) ([]byte, error) { return workload.MarshalSpec(spec) }

// LoadJobSpec parses and validates a serialized job spec.
func LoadJobSpec(data []byte) (*JobSpec, error) { return workload.UnmarshalSpec(data) }

// Compare runs the same job spec under two schedulers on identically
// configured clusters and returns (timeA, timeB, speedupOfBOverA). Any
// Option applies to both runs — topology, oversubscription, seed, faults —
// so comparisons are no longer limited to the default two-rack shape:
//
//	ta, tb, sp := pythia.Compare(spec, pythia.SchedulerECMP, pythia.SchedulerPythia,
//	    pythia.WithOversubscription(10), pythia.WithSeed(7))
//
// Compare panics if either run fails; use TryCompare when the options
// inject faults that may legitimately prevent completion.
func Compare(spec *JobSpec, a, b SchedulerKind, opts ...Option) (float64, float64, float64) {
	ta, tb, sp, err := TryCompare(spec, a, b, opts...)
	if err != nil {
		panic(fmt.Sprintf("pythia: %v", err))
	}
	return ta, tb, sp
}

// TryCompare is Compare returning an error instead of panicking. The error
// identifies which scheduler's run failed; a run that ends with unfinished
// jobs matches ErrUnfinished.
func TryCompare(spec *JobSpec, a, b SchedulerKind, opts ...Option) (float64, float64, float64, error) {
	run := func(k SchedulerKind) (float64, error) {
		cl := New(append(append([]Option(nil), opts...), WithScheduler(k))...)
		res, err := cl.TryRunJob(spec)
		if err != nil {
			return 0, fmt.Errorf("%v run: %w", k, err)
		}
		return res.DurationSec, nil
	}
	ta, err := run(a)
	if err != nil {
		return 0, 0, 0, err
	}
	tb, err := run(b)
	if err != nil {
		return ta, 0, 0, err
	}
	speedup := 0.0
	if tb > 0 {
		speedup = (ta - tb) / tb
	}
	return ta, tb, speedup, nil
}
