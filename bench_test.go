// Repo-level benchmark harness: one testing.B benchmark per table/figure in
// the paper's evaluation (see DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for paper-vs-measured values). Each benchmark regenerates
// its artifact — completion-time sweep, prediction curves, sequence diagram,
// overhead report — and publishes the headline quantity via b.ReportMetric
// so `go test -bench=.` prints the reproduced numbers.
//
// Scales: benchmarks default to bench.QuickScale (sort inputs /10, Nutch at
// its published 8 GB). Set -paperscale to rerun at the full published input
// sizes.
package pythia

import (
	"flag"
	"fmt"
	"testing"

	"pythia/internal/bench"
)

var paperScale = flag.Bool("paperscale", false, "run benchmarks at the paper's full input sizes")

func benchScale() bench.Scale {
	if *paperScale {
		return bench.PaperScale()
	}
	s := bench.QuickScale()
	s.Repeats = 1 // testing.B supplies the repetition
	return s
}

// BenchmarkFig1aSequenceDiagram regenerates the Fig. 1a toy-sort sequence
// diagram (3 maps, 2 reducers, 5:1 reducer skew, non-blocking network).
func BenchmarkFig1aSequenceDiagram(b *testing.B) {
	var ascii string
	for i := 0; i < b.N; i++ {
		ascii, _ = bench.RunFig1a()
	}
	if ascii == "" {
		b.Fatal("no diagram")
	}
}

// BenchmarkFig1bAdversarialECMP regenerates the Fig. 1b motivational
// numbers: a 159 MB shuffle flow on a 95%-loaded vs 25%-loaded path.
func BenchmarkFig1bAdversarialECMP(b *testing.B) {
	var res bench.Fig1bResult
	for i := 0; i < b.N; i++ {
		res = bench.RunFig1b()
	}
	b.ReportMetric(res.AdversarialSec, "hotpath-s")
	b.ReportMetric(res.OptimalSec, "cleanpath-s")
}

// BenchmarkFig3Nutch regenerates Figure 3: Nutch completion times under
// Pythia vs ECMP across oversubscription ratios. Reported metric: the 1:20
// relative speedup (the paper's 46% headline).
func BenchmarkFig3Nutch(b *testing.B) {
	var rows []bench.SpeedupRow
	for i := 0; i < b.N; i++ {
		rows = bench.RunFig3(benchScale())
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.Speedup*100, "speedup-1:20-%")
	b.ReportMetric(last.PythiaSec, "pythia-1:20-s")
	b.ReportMetric(rows[0].PythiaSec, "pythia-none-s")
}

// BenchmarkFig4Sort regenerates Figure 4: the Sort sweep (paper max 43%).
func BenchmarkFig4Sort(b *testing.B) {
	var rows []bench.SpeedupRow
	for i := 0; i < b.N; i++ {
		rows = bench.RunFig4(benchScale())
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.Speedup*100, "speedup-1:20-%")
	b.ReportMetric(last.PythiaSec, "pythia-1:20-s")
}

// BenchmarkFig5Prediction regenerates Figure 5: prediction promptness
// (the paper saw ≥ ~9 s minimum lead) and accuracy (3–7% overestimate) on
// the integer sort.
func BenchmarkFig5Prediction(b *testing.B) {
	var res bench.Fig5Result
	for i := 0; i < b.N; i++ {
		res = bench.RunFig5(benchScale())
	}
	b.ReportMetric(res.MinLeadSec, "min-lead-s")
	b.ReportMetric(res.MeanOverestimate*100, "overestimate-%")
}

// BenchmarkOverheadInstrumentation regenerates §V-C: per-server CPU cost of
// the prediction middleware (paper: 2–5%).
func BenchmarkOverheadInstrumentation(b *testing.B) {
	var res bench.OverheadResult
	for i := 0; i < b.N; i++ {
		res = bench.RunOverhead(benchScale())
	}
	b.ReportMetric(res.MeanCPUFraction*100, "cpu-%")
	b.ReportMetric(res.MgmtBytes/1e3, "mgmt-KB")
}

// BenchmarkHederaComparison regenerates E7: ECMP vs Hedera-like vs Pythia at
// 1:10 (§II/§VI discussion — reactive load-awareness closes part of the
// gap).
func BenchmarkHederaComparison(b *testing.B) {
	var rows []bench.HederaRow
	for i := 0; i < b.N; i++ {
		rows = bench.RunHederaComparison(benchScale())
	}
	b.ReportMetric(rows[0].ECMPSec, "sort-ecmp-s")
	b.ReportMetric(rows[0].HederaSec, "sort-hedera-s")
	b.ReportMetric(rows[0].PythiaSec, "sort-pythia-s")
}

// BenchmarkAblationKPaths (A1): k-shortest-paths diversity on a 4-trunk
// testbed.
func BenchmarkAblationKPaths(b *testing.B) {
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		rows = bench.RunAblationKPaths(benchScale())
	}
	b.ReportMetric(rows[0].PythiaSec, "k1-s")
	b.ReportMetric(rows[2].PythiaSec, "k4-s")
}

// BenchmarkAblationAggregation (A2): host-pair flow aggregation on/off.
func BenchmarkAblationAggregation(b *testing.B) {
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		rows = bench.RunAblationAggregation(benchScale())
	}
	b.ReportMetric(rows[0].PythiaSec, "agg-on-s")
	b.ReportMetric(rows[1].PythiaSec, "agg-off-s")
}

// BenchmarkAblationPredictionDelay (A3): how late predictions erode the
// benefit.
func BenchmarkAblationPredictionDelay(b *testing.B) {
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		rows = bench.RunAblationPredictionDelay(benchScale())
	}
	b.ReportMetric(rows[0].Speedup*100, "prompt-speedup-%")
	b.ReportMetric(rows[len(rows)-1].Speedup*100, "delayed-speedup-%")
}

// BenchmarkAblationInstallLatency (A4): per-rule switch programming cost
// sweep (paper budget: 3–5 ms/flow).
func BenchmarkAblationInstallLatency(b *testing.B) {
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		rows = bench.RunAblationInstallLatency(benchScale())
	}
	b.ReportMetric(rows[1].Speedup*100, "4ms-speedup-%")
	b.ReportMetric(rows[len(rows)-1].Speedup*100, "500ms-speedup-%")
}

// BenchmarkAblationScope (A5): host-pair vs rack-pair aggregation — the
// §IV forwarding-state-conservation policy. Reported metrics: completion
// time and installed-rule count per scope.
func BenchmarkAblationScope(b *testing.B) {
	var rows []bench.ScopeRow
	for i := 0; i < b.N; i++ {
		rows = bench.RunAblationScope(benchScale())
	}
	b.ReportMetric(rows[0].PythiaSec, "hostpair-s")
	b.ReportMetric(float64(rows[0].Rules), "hostpair-rules")
	b.ReportMetric(rows[1].PythiaSec, "rackpair-s")
	b.ReportMetric(float64(rows[1].Rules), "rackpair-rules")
}

// BenchmarkAblationCriticality (A6): the §VI flow-priority criterion on a
// heavily skewed sort. Expect near-parity on this small testbed (first-fit
// decreasing already orders by the gating demand).
func BenchmarkAblationCriticality(b *testing.B) {
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		rows = bench.RunAblationCriticality(benchScale())
	}
	b.ReportMetric(rows[0].PythiaSec, "crit-off-s")
	b.ReportMetric(rows[1].PythiaSec, "crit-on-s")
}

// BenchmarkScaleOut (E8): sort under ECMP vs Pythia on growing leaf-spine
// fabrics — the §IV "larger-scale future SDN setup".
func BenchmarkScaleOut(b *testing.B) {
	var rows []bench.ScaleOutRow
	for i := 0; i < b.N; i++ {
		rows = bench.RunScaleOut(benchScale())
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.Speedup*100, "4x4-speedup-%")
}

// BenchmarkFlowCombComparison (E9): the §VI related-work system — same
// predictive architecture, slower detection, software switches.
func BenchmarkFlowCombComparison(b *testing.B) {
	var rows []bench.RelatedRow
	for i := 0; i < b.N; i++ {
		rows = bench.RunFlowCombComparison(benchScale())
	}
	b.ReportMetric(rows[0].JobSec, "ecmp-s")
	b.ReportMetric(rows[1].JobSec, "flowcomb-s")
	b.ReportMetric(rows[2].JobSec, "pythia-s")
}

// BenchmarkPartitionerComparison (E10): §II's application-level skew remedy
// (adaptive partitioning) vs and composed with network-level Pythia.
func BenchmarkPartitionerComparison(b *testing.B) {
	var rows []bench.RelatedRow
	for i := 0; i < b.N; i++ {
		rows = bench.RunPartitionerComparison(benchScale())
	}
	b.ReportMetric(rows[0].JobSec, "ecmp-hash-s")
	b.ReportMetric(rows[3].JobSec, "pythia-balanced-s")
}

// BenchmarkAblationTimeliness (A7): the paper's proposed follow-up
// experiment — prediction lead vs Hadoop parameters (parallel copies,
// completion-event poll period). Expected: insensitivity.
func BenchmarkAblationTimeliness(b *testing.B) {
	var rows []bench.TimelinessRow
	for i := 0; i < b.N; i++ {
		rows = bench.RunAblationTimeliness(benchScale())
	}
	b.ReportMetric(rows[0].MinLeadSec, "default-minlead-s")
	b.ReportMetric(rows[len(rows)-1].MinLeadSec, "poll6s-minlead-s")
}

// BenchmarkTraceReplay (E13): a Facebook/SWIM-shaped multi-job trace under
// ECMP vs Pythia; reports the shuffle-time share (the paper's motivating
// 33% statistic) and the mean-job speedup.
func BenchmarkTraceReplay(b *testing.B) {
	var c bench.TraceComparison
	for i := 0; i < b.N; i++ {
		c = bench.RunTrace()
	}
	b.ReportMetric(c.ECMP.ShuffleFraction*100, "ecmp-shuffle-%")
	b.ReportMetric(c.MeanJobSpeedup*100, "meanjob-speedup-%")
}

// BenchmarkOptimalityGap (E11): distance to the omniscient lower bound
// across the oversubscription sweep (Pythia converges; ECMP does not).
func BenchmarkOptimalityGap(b *testing.B) {
	var rows []bench.GapRow
	for i := 0; i < b.N; i++ {
		rows = bench.RunOptimalityGap(benchScale())
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.PythiaGap*100, "pythia-gap-1:20-%")
	b.ReportMetric(last.ECMPGap*100, "ecmp-gap-1:20-%")
}

// BenchmarkScaleFatTree measures simulator throughput on k-ary fat-trees
// far beyond the paper's 16-server testbed across the three allocator
// implementations: incremental (coalesced, component-scoped, dense scratch —
// the default), indexed (PR 1: eager full pass per mutation, occupancy from
// the per-link index) and scan (the original full-scan reference). The
// determinism tests prove all three produce bit-identical schedules; this
// benchmark shows what coalescing + incremental allocation buy in wall-clock
// time on top of the indexes.
func BenchmarkScaleFatTree(b *testing.B) {
	modes := []struct {
		name  string
		alloc AllocMode
	}{
		{"incremental", AllocIncremental},
		{"indexed", AllocIndexed},
		{"scan", AllocScan},
	}
	type row struct {
		name string
		cfg  bench.ScaleFatTreeConfig
	}
	var rows []row
	for _, k := range []int{4, 6, 8} {
		for _, m := range modes {
			rows = append(rows, row{
				name: fmt.Sprintf("k%d/hosts%d/%s", k, bench.FatTreeHosts(k), m.name),
				cfg:  bench.ScaleFatTreeConfig{K: k, Alloc: m.alloc},
			})
		}
	}
	// Event-kernel comparison on the hottest default row: the calendar queue
	// (the k=8 row above) vs the reference binary heap on the same workload.
	rows = append(rows, row{
		name: fmt.Sprintf("k8/hosts%d/incremental-heap", bench.FatTreeHosts(8)),
		cfg:  bench.ScaleFatTreeConfig{K: 8, Sched: SchedHeap},
	})
	// Order-of-magnitude fabrics: k=16 (1024 hosts, 1280 switches) and k=24
	// (3456 hosts, 4320 switches) with a calibrated job — the default sizing
	// grows cubically with k and would put half a million flows through one
	// trial; a fixed 4 GB / 64-reducer sort keeps the flow population
	// comparable across rows so the fabric itself (topology build, path
	// computation, telemetry, allocation) is what scales.
	for _, k := range []int{16, 24} {
		rows = append(rows, row{
			name: fmt.Sprintf("k%d/hosts%d/incremental", k, bench.FatTreeHosts(k)),
			cfg: bench.ScaleFatTreeConfig{
				K: k, SortBytes: 4 * GB, Reduces: 64, AllocWorkers: 4,
			},
		})
	}
	for _, r := range rows {
		r := r
		b.Run(r.name, func(b *testing.B) {
			b.ReportAllocs()
			var res bench.ScaleFatTreeResult
			for i := 0; i < b.N; i++ {
				res = bench.RunScaleFatTree(r.cfg)
			}
			b.ReportMetric(res.JobSec, "sim-job-s")
			b.ReportMetric(float64(len(res.FlowHistory)), "flows")
			// Prediction-plane robustness counters ride along in the
			// artifact; a healthy scale run must keep them at zero.
			f := res.Faults
			b.ReportMetric(float64(f.DedupHits+f.DuplicateIntents), "dup-intents")
			b.ReportMetric(float64(f.ExpiredBookings+f.ExpiredIntents), "expired-bookings")
			b.ReportMetric(float64(f.LateIntents+f.InFlightDropped), "late-intents")
			if f != (bench.FaultCounters{}) {
				b.Fatalf("healthy scale run recorded faults: %+v", f)
			}
			// Flight-recorder prediction-quality scores: how far ahead
			// of each shuffle flow its rules landed, and how far the
			// predicted bytes missed the wire bytes.
			if q := res.Quality; q != nil {
				b.ReportMetric(q.LeadP50Sec, "lead-p50-s")
				b.ReportMetric(q.LeadP95Sec, "lead-p95-s")
				b.ReportMetric(q.LeadMaxSec, "lead-max-s")
				b.ReportMetric(q.LateFraction*100, "late-frac-%")
				b.ReportMetric(q.ByteErrMeanAbsFrac*100, "byte-err-%")
			}
		})
	}
}
