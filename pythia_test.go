package pythia

import (
	"strings"
	"testing"
)

func TestNewDefaultsECMP(t *testing.T) {
	cl := New()
	if cl.Scheduler() != SchedulerECMP {
		t.Fatalf("default scheduler = %v", cl.Scheduler())
	}
}

func TestSchedulerKindString(t *testing.T) {
	if SchedulerECMP.String() != "ECMP" || SchedulerPythia.String() != "Pythia" || SchedulerHedera.String() != "Hedera" {
		t.Fatal("kind strings")
	}
	if SchedulerKind(9).String() == "" {
		t.Fatal("unknown kind")
	}
}

func TestRunJobAllSchedulers(t *testing.T) {
	for _, k := range []SchedulerKind{SchedulerECMP, SchedulerPythia, SchedulerHedera} {
		cl := New(WithScheduler(k), WithOversubscription(10), WithSeed(2))
		res := cl.RunJob(SortJob(2*GB, 6, 2))
		if res.DurationSec <= 0 {
			t.Fatalf("%v: duration %v", k, res.DurationSec)
		}
		if diff := res.ShuffleBytes - 2*GB; diff > 1 || diff < -1 {
			t.Fatalf("%v: shuffle bytes %v", k, res.ShuffleBytes)
		}
		if k == SchedulerPythia && res.RulesInstalled == 0 {
			t.Fatal("Pythia installed no rules")
		}
		if k != SchedulerPythia && res.RulesInstalled != 0 {
			t.Fatalf("%v reported rules", k)
		}
	}
}

func TestPythiaFasterUnderLoad(t *testing.T) {
	spec := SortJob(4*GB, 8, 3)
	ecmpT, pyT, speedup := Compare(spec, SchedulerECMP, SchedulerPythia, WithOversubscription(20), WithSeed(3))
	if pyT >= ecmpT {
		t.Fatalf("Pythia (%.1fs) not faster than ECMP (%.1fs)", pyT, ecmpT)
	}
	if speedup <= 0 {
		t.Fatalf("speedup = %v", speedup)
	}
}

func TestSequenceRecording(t *testing.T) {
	cl := New(WithSequenceRecording(), WithSeed(1))
	cl.RunJob(ToySortJob())
	diag := cl.SequenceDiagram(100)
	if !strings.Contains(diag, "toy-sort") {
		t.Fatalf("diagram missing job: %s", diag)
	}
	if !strings.Contains(cl.SequenceDiagramSVG(), "<svg") {
		t.Fatal("svg missing")
	}
}

func TestSequenceDiagramEmptyWithoutRecording(t *testing.T) {
	cl := New()
	cl.RunJob(ToySortJob())
	if cl.SequenceDiagram(100) != "" || cl.SequenceDiagramSVG() != "" {
		t.Fatal("diagram without recording option")
	}
}

func TestOverheadReport(t *testing.T) {
	cl := New(WithScheduler(SchedulerPythia))
	cl.RunJob(NutchJob(1*GB, 6, 1))
	rep := cl.Overhead()
	if rep.Spills == 0 || rep.MeanCPUFraction <= 0 || rep.ManagementBytes <= 0 {
		t.Fatalf("overhead: %+v", rep)
	}
	if rep.MaxCPUFraction < rep.MeanCPUFraction {
		t.Fatal("max < mean")
	}
}

func TestOptionsApply(t *testing.T) {
	cl := New(
		WithHostsPerRack(3),
		WithTrunks(3),
		WithLinkRateGbps(10),
		WithSeed(9),
		WithReduceSlowstart(0.5),
		WithParallelCopies(2),
		WithKShortestPaths(2),
		WithScheduler(SchedulerPythia),
		WithOversubscription(5),
	)
	res := cl.RunJob(SortJob(1*GB, 4, 9))
	if res.DurationSec <= 0 {
		t.Fatal("custom cluster failed")
	}
}

func TestWorkloadConstructors(t *testing.T) {
	for _, spec := range []*JobSpec{
		SortJob(1*GB, 4, 1),
		NutchJob(1*GB, 4, 1),
		WordCountJob(1*GB, 4, 1),
		ToySortJob(),
		IntegerSortJob(1*GB, 4, 1),
		CustomJob(WorkloadConfig{Name: "c", InputBytes: 1 * GB}),
	} {
		if err := spec.Validate(); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
	}
}

func TestDeterministicFacade(t *testing.T) {
	run := func() float64 {
		cl := New(WithScheduler(SchedulerPythia), WithOversubscription(10), WithSeed(4))
		return cl.RunJob(NutchJob(1*GB, 6, 4)).DurationSec
	}
	if run() != run() {
		t.Fatal("facade nondeterministic")
	}
}

func TestRunJobsConcurrent(t *testing.T) {
	cl := New(WithScheduler(SchedulerPythia), WithOversubscription(10), WithSeed(3))
	rs := cl.RunJobs(
		SortJob(2*GB, 6, 3),
		NutchJob(1*GB, 6, 4),
	)
	if len(rs) != 2 {
		t.Fatalf("results = %d", len(rs))
	}
	for _, r := range rs {
		if r.DurationSec <= 0 {
			t.Fatalf("%s duration %v", r.Name, r.DurationSec)
		}
	}
	if rs[0].Name != "sort" || rs[1].Name != "nutch-indexing" {
		t.Fatalf("result order: %s, %s", rs[0].Name, rs[1].Name)
	}
}

func TestChainedJobsOnOneCluster(t *testing.T) {
	cl := New(WithScheduler(SchedulerPythia), WithSeed(5))
	r1 := cl.RunJob(SortJob(1*GB, 4, 5))
	r2 := cl.RunJob(SortJob(1*GB, 4, 6))
	if r1.DurationSec <= 0 || r2.DurationSec <= 0 {
		t.Fatal("chained jobs failed")
	}
}

func TestRackAggregationOption(t *testing.T) {
	cl := New(WithScheduler(SchedulerPythia), WithRackAggregation(), WithOversubscription(10), WithSeed(7))
	res := cl.RunJob(SortJob(2*GB, 6, 7))
	if res.DurationSec <= 0 {
		t.Fatal("rack aggregation cluster failed")
	}
	// Rack-pair steering: only inter-rack pairs need rules, and only one
	// steering hop each — far fewer than host-pair scope.
	host := New(WithScheduler(SchedulerPythia), WithOversubscription(10), WithSeed(7))
	hres := host.RunJob(SortJob(2*GB, 6, 7))
	if res.RulesInstalled*3 > hres.RulesInstalled {
		t.Fatalf("rack rules %d not much fewer than host rules %d",
			res.RulesInstalled, hres.RulesInstalled)
	}
}

func TestCriticalityOption(t *testing.T) {
	cl := New(WithScheduler(SchedulerPythia), WithCriticality(), WithOversubscription(10), WithSeed(9))
	if res := cl.RunJob(SortJob(2*GB, 6, 9)); res.DurationSec <= 0 {
		t.Fatal("criticality cluster failed")
	}
}

func TestHDFSWritebackOption(t *testing.T) {
	spec := CustomJob(WorkloadConfig{Name: "wb", InputBytes: 1 * GB, NumReduces: 4, Seed: 2})
	spec.ReduceOutputRatio = 1.0

	with := New(WithScheduler(SchedulerPythia), WithHDFS(), WithSeed(2))
	resWith := with.RunJob(spec)
	if got := with.HDFSBytesWritten(); got < 2.9*GB || got > 3.1*GB {
		t.Fatalf("HDFS bytes = %v, want ~3 GB (1 GB output x 3 replicas)", got)
	}

	spec2 := CustomJob(WorkloadConfig{Name: "wb", InputBytes: 1 * GB, NumReduces: 4, Seed: 2})
	spec2.ReduceOutputRatio = 1.0
	without := New(WithScheduler(SchedulerPythia), WithSeed(2))
	resWithout := without.RunJob(spec2)
	if without.HDFSBytesWritten() != 0 {
		t.Fatal("bytes written without HDFS")
	}
	if resWith.DurationSec <= resWithout.DurationSec {
		t.Fatalf("write-back free: %v vs %v", resWith.DurationSec, resWithout.DurationSec)
	}
}

func TestExplicitControlPlaneOption(t *testing.T) {
	cl := New(WithScheduler(SchedulerPythia), WithExplicitControlPlane(),
		WithOversubscription(10), WithSeed(6))
	res := cl.RunJob(SortJob(2*GB, 6, 6))
	if res.DurationSec <= 0 || res.RulesInstalled == 0 {
		t.Fatalf("explicit control plane run broken: %+v", res)
	}
	// Same scenario without the model must land within 5%.
	base := New(WithScheduler(SchedulerPythia), WithOversubscription(10), WithSeed(6))
	bres := base.RunJob(SortJob(2*GB, 6, 6))
	if r := res.DurationSec / bres.DurationSec; r > 1.05 || r < 0.95 {
		t.Fatalf("control-plane model shifted results: %.2f", r)
	}
}
