package pythia

import "testing"

// The seeded chaos harness: randomized faults in all three planes — data
// (trunk failure), control (controller outage), prediction (management-star
// faults and outage, monitor crashes, noisy predictions) — under every
// scheduler. The invariants: every job completes, no bookings leak past
// completion, and two same-seed runs produce bit-identical histories.

type chaosOutcome struct {
	results []JobResult
	faults  FaultReport
}

// runChaos builds a fully faulted cluster and runs two concurrent jobs
// through the storm.
func runChaos(t *testing.T, k SchedulerKind) chaosOutcome {
	t.Helper()
	cl, results := runChaosCluster(t, k)
	return chaosOutcome{results: results, faults: cl.Faults()}
}

// runChaosCluster is the storm itself, returning the cluster for callers
// that inspect more than results and fault counters (the flight-recorder
// golden tests). Extra options ride on top of the standard fault stack.
func runChaosCluster(t *testing.T, k SchedulerKind, extra ...Option) (*Cluster, []JobResult) {
	t.Helper()
	cl := New(append([]Option{
		WithScheduler(k),
		WithOversubscription(10),
		WithSeed(13),
		WithDeadline(600),
		WithMgmtFaults(MgmtFaults{
			DropProb:     0.10,
			DupProb:      0.15,
			JitterMaxSec: 0.002,
			Seed:         99,
		}),
		WithMonitorFaults(MonitorFaults{CrashProb: 0.10, DowntimeSec: 4, Seed: 7}),
		WithPredictionError(0.25, 3),
		WithBookingTTL(30),
		WithControlPlaneFaults(ControlPlaneFaults{
			InstallTimeoutSec: 0.05,
			MaxRetries:        2,
			RetryBackoffSec:   0.1,
		}),
	}, extra...)...)
	// Data plane: lose a trunk mid-shuffle, recover later.
	trunks := cl.Trunks()
	cl.At(5, func() { cl.FailLink(trunks[0]) })
	cl.At(25, func() { cl.RecoverLink(trunks[0]) })
	// Control plane: controller outage (no-op for ECMP/Hedera).
	cl.At(8, func() { cl.FailController() })
	cl.At(18, func() { cl.RecoverController() })
	// Prediction plane: management-star outage window and a scripted
	// monitor crash (supervised restart after 4 s) on top of the seeded
	// per-message faults.
	cl.At(10, func() { cl.FailMgmt() })
	cl.At(14, func() { cl.RecoverMgmt() })
	cl.At(3, func() { cl.CrashMonitor(1) })

	results, err := cl.TryRunJobs(
		SortJob(4*GB, 8, 5),
		NutchJob(1*GB, 4, 6),
	)
	if err != nil {
		t.Fatalf("%v: jobs did not survive the chaos run: %v", k, err)
	}
	for _, r := range results {
		if r.DurationSec <= 0 {
			t.Fatalf("%v: job %q reports nonpositive duration", k, r.Name)
		}
	}
	return cl, results
}

func TestChaosAllPlanesAllSchedulers(t *testing.T) {
	for _, k := range allSchedulers {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			a := runChaos(t, k)
			// Faults actually happened on the prediction plane.
			f := a.faults
			if f.MgmtDropped == 0 || f.MgmtDuplicated == 0 {
				t.Fatalf("no management faults fired: %+v", f)
			}
			if f.MonitorCrashes == 0 {
				t.Fatal("scripted monitor crash not recorded")
			}
			// No reservations survive their job.
			if f.LeakedBookings != 0 {
				t.Fatalf("%d bookings leaked past job completion", f.LeakedBookings)
			}
			// Same seed, bit-identical history: durations and every fault
			// counter match across independent runs.
			b := runChaos(t, k)
			for i := range a.results {
				if a.results[i].DurationSec != b.results[i].DurationSec {
					t.Fatalf("same seed, different durations for %q: %.9f vs %.9f",
						a.results[i].Name, a.results[i].DurationSec, b.results[i].DurationSec)
				}
			}
			if a.faults != b.faults {
				t.Fatalf("same seed, different fault history:\n%+v\nvs\n%+v", a.faults, b.faults)
			}
		})
	}
}

// TestChaosShardCountInvariant: the full three-plane storm on the Pythia
// scheduler is bit-identical at every collector shard count, and no shard
// layout leaks a booking past job completion.
func TestChaosShardCountInvariant(t *testing.T) {
	run := func(shards int) chaosOutcome {
		cl, results := runChaosCluster(t, SchedulerPythia, WithCollectorShards(shards))
		return chaosOutcome{results: results, faults: cl.Faults()}
	}
	ref := run(1)
	if ref.faults.LeakedBookings != 0 {
		t.Fatalf("single-shard storm leaked %d bookings", ref.faults.LeakedBookings)
	}
	for _, shards := range []int{2, 8} {
		got := run(shards)
		for i := range ref.results {
			if got.results[i] != ref.results[i] {
				t.Errorf("shards=%d: job %q result %+v != %+v",
					shards, ref.results[i].Name, got.results[i], ref.results[i])
			}
		}
		if got.faults != ref.faults {
			t.Errorf("shards=%d: fault history diverged:\n%+v\nvs\n%+v", shards, got.faults, ref.faults)
		}
		if got.faults.LeakedBookings != 0 {
			t.Errorf("shards=%d: %d bookings leaked past job completion", shards, got.faults.LeakedBookings)
		}
	}
}

// TestZeroFaultConfigGolden: installing the whole prediction-plane fault
// stack with every probability at zero must be bit-identical to not
// installing it at all — no stray RNG draws, no behavior change.
func TestZeroFaultConfigGolden(t *testing.T) {
	spec := SortJob(4*GB, 8, 5)
	run := func(opts ...Option) JobResult {
		base := []Option{WithScheduler(SchedulerPythia), WithOversubscription(10), WithSeed(11)}
		return New(append(base, opts...)...).RunJob(spec)
	}
	// Fixed-latency management path.
	plain := run()
	armed := run(
		WithMonitorFaults(MonitorFaults{CrashProb: 0, Seed: 42}),
		WithPredictionError(0, 42),
		WithBookingTTL(300),
	)
	if plain.DurationSec != armed.DurationSec {
		t.Fatalf("zero-valued fault stack changed the schedule: %.9f vs %.9f",
			plain.DurationSec, armed.DurationSec)
	}
	// Explicit management network: an all-zero MgmtFaults must match the
	// plain explicit control plane bit for bit.
	explicit := run(WithExplicitControlPlane())
	zeroFaults := run(WithMgmtFaults(MgmtFaults{Seed: 42}))
	if explicit.DurationSec != zeroFaults.DurationSec {
		t.Fatalf("zero-valued MgmtFaults changed the schedule: %.9f vs %.9f",
			explicit.DurationSec, zeroFaults.DurationSec)
	}
}

// TestMgmtTelemetryExposed: the management network's traffic accounting is
// reachable through the facade without internal imports (satellite of the
// prediction-plane issue).
func TestMgmtTelemetryExposed(t *testing.T) {
	cl := New(WithScheduler(SchedulerPythia), WithOversubscription(10),
		WithSeed(3), WithExplicitControlPlane())
	res := cl.RunJob(SortJob(2*GB, 8, 5))
	if res.DurationSec <= 0 {
		t.Fatal("job failed")
	}
	f := cl.Faults()
	if f.MgmtMessages == 0 || f.MgmtBytes <= 0 {
		t.Fatalf("management telemetry empty: %+v", f)
	}
	if f.MgmtDropped != 0 || f.MgmtDuplicated != 0 || f.MgmtDeferred != 0 {
		t.Fatalf("fault counters nonzero on a healthy fabric: %+v", f)
	}
	if f.LeakedBookings != 0 {
		t.Fatalf("healthy run leaked %d bookings", f.LeakedBookings)
	}
	// The star carries the middleware's messages plus the controller's
	// FLOW_MODs, so the network-side byte count dominates the
	// middleware-only figure.
	if f.MgmtBytes < cl.Overhead().ManagementBytes {
		t.Fatalf("network bytes %v below middleware bytes %v", f.MgmtBytes, cl.Overhead().ManagementBytes)
	}
}

// TestPredictionErrorDegradesGracefully: large prediction noise may cost
// schedule quality but must never break completion or determinism.
func TestPredictionErrorDegradesGracefully(t *testing.T) {
	run := func(factor float64) float64 {
		cl := New(WithScheduler(SchedulerPythia), WithOversubscription(10),
			WithSeed(5), WithPredictionError(factor, 17))
		return cl.RunJob(SortJob(4*GB, 8, 5)).DurationSec
	}
	noisy := run(0.5)
	if noisy <= 0 {
		t.Fatal("noisy run failed")
	}
	if again := run(0.5); again != noisy {
		t.Fatalf("same noise seed, different schedules: %.9f vs %.9f", noisy, again)
	}
}
