package pythia

import (
	"strings"
	"testing"
)

// allSchedulers enumerates the three flow-allocation schemes the failure
// plane must serve uniformly.
var allSchedulers = []SchedulerKind{SchedulerECMP, SchedulerHedera, SchedulerPythia}

// runTrunkFault builds a two-rack cluster, fails trunk0 mid-shuffle,
// recovers it later, and returns the job result.
func runTrunkFault(t *testing.T, k SchedulerKind) JobResult {
	t.Helper()
	cl := New(WithScheduler(k), WithOversubscription(10), WithSeed(11))
	trunks := cl.Trunks()
	if len(trunks) != 2 {
		t.Fatalf("two-rack cluster reports %d trunks, want 2", len(trunks))
	}
	cl.At(10, func() { cl.FailLink(trunks[0]) })
	cl.At(40, func() { cl.RecoverLink(trunks[0]) })
	res, err := cl.TryRunJob(SortJob(4*GB, 8, 5))
	if err != nil {
		t.Fatalf("%v: job did not survive trunk failure: %v", k, err)
	}
	return res
}

// TestTrunkFailureDeterministicAllSchedulers: a mid-shuffle trunk failure
// plus later recovery completes under every scheduler, and identical seeds
// give identical completion times across runs (the facade failure plane
// does not break determinism).
func TestTrunkFailureDeterministicAllSchedulers(t *testing.T) {
	for _, k := range allSchedulers {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			a := runTrunkFault(t, k)
			b := runTrunkFault(t, k)
			if a.DurationSec != b.DurationSec {
				t.Fatalf("%v: same seed, different durations: %.6f vs %.6f",
					k, a.DurationSec, b.DurationSec)
			}
			if a.DurationSec <= 0 {
				t.Fatalf("%v: nonpositive duration %.3f", k, a.DurationSec)
			}
		})
	}
}

// runSwitchFault fails one spine of a 2-leaf/2-spine fabric mid-job and
// recovers it later.
func runSwitchFault(t *testing.T, k SchedulerKind) JobResult {
	t.Helper()
	cl := New(WithScheduler(k), WithSeed(11),
		WithTopology(LeafSpineTopology(2, 2, 4)))
	var spine SwitchID = -1
	for _, sw := range cl.Switches() {
		if sw.Rack < 0 {
			spine = sw.ID
			break
		}
	}
	if spine < 0 {
		t.Fatal("leaf-spine cluster reports no spine switch")
	}
	cl.At(10, func() { cl.FailSwitch(spine) })
	cl.At(40, func() { cl.RecoverSwitch(spine) })
	res, err := cl.TryRunJob(SortJob(4*GB, 8, 5))
	if err != nil {
		t.Fatalf("%v: job did not survive spine failure: %v", k, err)
	}
	return res
}

// TestSwitchFailureDeterministicAllSchedulers: losing a whole spine switch
// (every incident cable at once) mid-job completes deterministically under
// every scheduler.
func TestSwitchFailureDeterministicAllSchedulers(t *testing.T) {
	for _, k := range allSchedulers {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			a := runSwitchFault(t, k)
			b := runSwitchFault(t, k)
			if a.DurationSec != b.DurationSec {
				t.Fatalf("%v: same seed, different durations: %.6f vs %.6f",
					k, a.DurationSec, b.DurationSec)
			}
		})
	}
}

// TestSwitchFailurePersistsAdminLinkDown: recovering a switch must not
// resurrect a cable that was also explicitly failed.
func TestSwitchFailurePersistsAdminLinkDown(t *testing.T) {
	cl := New(WithTopology(LeafSpineTopology(2, 2, 2)))
	trunks := cl.Trunks()
	var spine SwitchID = -1
	for _, sw := range cl.Switches() {
		if sw.Rack < 0 {
			spine = sw.ID
			break
		}
	}
	// Fail a cable into the spine, then the spine, then recover the spine:
	// the cable must stay down until its own recovery.
	var target LinkID = -1
	for _, l := range trunks {
		cl.FailLink(l)
		target = l
		break
	}
	cl.FailSwitch(spine)
	cl.RecoverSwitch(spine)
	if got := cl.LinkCarriedGB(target); got != 0 {
		t.Fatalf("unexpected traffic on failed link: %f GB", got)
	}
	res, err := cl.TryRunJob(SortJob(1*GB, 4, 5))
	if err != nil {
		t.Fatalf("job failed: %v", err)
	}
	if res.DurationSec <= 0 {
		t.Fatal("job reported nonpositive duration")
	}
}

// TestControlPlaneFaultFallbackAndReconcile: a controller outage makes rule
// installs time out and retry; past the budget Pythia degrades aggregates
// to the ECMP pipeline, and reconciles them once connectivity returns. The
// job completes throughout.
func TestControlPlaneFaultFallbackAndReconcile(t *testing.T) {
	run := func() (JobResult, FaultReport) {
		cl := New(
			WithScheduler(SchedulerPythia),
			WithOversubscription(10),
			WithSeed(5),
			WithControlPlaneFaults(ControlPlaneFaults{
				InstallTimeoutSec: 0.05,
				MaxRetries:        2,
				RetryBackoffSec:   0.1,
			}),
		)
		cl.At(2, func() { cl.FailController() })
		// Recover while degraded aggregates still carry live demand, so
		// reconciliation has something to re-place.
		cl.At(20, func() { cl.RecoverController() })
		res, err := cl.TryRunJob(SortJob(4*GB, 8, 5))
		if err != nil {
			t.Fatalf("job did not survive controller outage: %v", err)
		}
		return res, cl.Faults()
	}
	res, f := run()
	if f.DroppedFlowMods == 0 {
		t.Fatal("controller outage dropped no flow-mods")
	}
	if f.Retransmissions == 0 {
		t.Fatal("no retransmissions despite drops and timeout")
	}
	if f.AggregatesDegraded == 0 {
		t.Fatal("no aggregates degraded to the ECMP pipeline")
	}
	if f.Reconciliations == 0 {
		t.Fatal("no aggregates reconciled after controller recovery")
	}
	res2, _ := run()
	if res.DurationSec != res2.DurationSec {
		t.Fatalf("control-plane faults broke determinism: %.6f vs %.6f",
			res.DurationSec, res2.DurationSec)
	}
}

// TestControlPlaneDropRetry: deterministic message loss without an outage
// is absorbed by the retry machinery — the job completes and nothing
// degrades when retries succeed.
func TestControlPlaneDropRetry(t *testing.T) {
	cl := New(
		WithScheduler(SchedulerPythia),
		WithOversubscription(10),
		WithSeed(5),
		WithControlPlaneFaults(ControlPlaneFaults{
			InstallTimeoutSec: 0.05,
			MaxRetries:        3,
			RetryBackoffSec:   0.05,
			DropEvery:         4,
		}),
	)
	res, err := cl.TryRunJob(SortJob(2*GB, 8, 5))
	if err != nil {
		t.Fatalf("job failed under lossy control plane: %v", err)
	}
	f := cl.Faults()
	if f.DroppedFlowMods == 0 || f.Retransmissions == 0 {
		t.Fatalf("expected drops and retransmissions, got %+v", f)
	}
	if res.RulesInstalled == 0 {
		t.Fatal("no rules installed despite successful retries")
	}
}

// TestPerJobRuleDeltas is the regression for the cumulative-RulesInstalled
// bug: two identical jobs run back to back must each report their own rule
// count, not the running total.
func TestPerJobRuleDeltas(t *testing.T) {
	cl := New(WithScheduler(SchedulerPythia), WithOversubscription(10), WithSeed(3))
	spec := SortJob(2*GB, 8, 5)
	r1 := cl.RunJob(spec)
	r2 := cl.RunJob(spec)
	if r1.RulesInstalled == 0 || r2.RulesInstalled == 0 {
		t.Fatalf("expected rules for both jobs, got %d and %d", r1.RulesInstalled, r2.RulesInstalled)
	}
	// With the bug, job 2 reported the cumulative counter: at least double
	// job 1's own installs.
	if r2.RulesInstalled >= 2*r1.RulesInstalled {
		t.Fatalf("job 2 reports cumulative rules: job1=%d job2=%d", r1.RulesInstalled, r2.RulesInstalled)
	}
}

// TestTryRunJobsDeadline: a fully partitioned fabric cannot complete a job;
// with a deadline TryRunJobs reports the starvation as an error instead of
// looping in virtual time or panicking.
func TestTryRunJobsDeadline(t *testing.T) {
	cl := New(WithScheduler(SchedulerECMP), WithSeed(2), WithDeadline(120))
	for _, tr := range cl.Trunks() {
		cl.FailLink(tr)
	}
	// Enough reducers to span both racks, so the shuffle needs the trunks.
	_, err := cl.TryRunJobs(SortJob(4*GB, 10, 5))
	if err == nil {
		t.Fatal("expected starvation error on a partitioned fabric")
	}
	if !strings.Contains(err.Error(), "did not complete") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestTryRunJobsSubmitError: an invalid spec surfaces as an error, not a
// panic.
func TestTryRunJobsSubmitError(t *testing.T) {
	cl := New()
	if _, err := cl.TryRunJobs(&JobSpec{}); err == nil {
		t.Fatal("expected a submission error for the zero JobSpec")
	}
}

// TestCompareOptions: the variadic Compare accepts arbitrary options —
// including a non-default topology — and TryCompare matches it.
func TestCompareOptions(t *testing.T) {
	spec := ToySortJob()
	a1, b1, _ := Compare(spec, SchedulerECMP, SchedulerPythia, WithOversubscription(5), WithSeed(9))
	a2, b2, _, err := TryCompare(spec, SchedulerECMP, SchedulerPythia, WithOversubscription(5), WithSeed(9))
	if err != nil {
		t.Fatalf("TryCompare: %v", err)
	}
	if a1 != a2 || b1 != b2 {
		t.Fatalf("TryCompare diverges from Compare: (%.3f,%.3f) vs (%.3f,%.3f)", a1, b1, a2, b2)
	}
	a3, b3, _ := Compare(spec, SchedulerECMP, SchedulerPythia,
		WithTopology(LeafSpineTopology(2, 2, 3)), WithSeed(9))
	if a3 <= 0 || b3 <= 0 {
		t.Fatalf("Compare on leaf-spine produced nonpositive times: %.3f, %.3f", a3, b3)
	}
}

// TestAllocModesAgreeViaFacade: the facade-selected allocators produce the
// identical schedule (the golden equivalence that previously required
// importing internal/netsim to assert).
func TestAllocModesAgreeViaFacade(t *testing.T) {
	spec := SortJob(2*GB, 8, 7)
	var base float64
	for i, m := range []AllocMode{AllocIncremental, AllocIndexed, AllocScan} {
		cl := New(WithScheduler(SchedulerPythia), WithOversubscription(10), WithSeed(7), WithAllocMode(m))
		d := cl.RunJob(spec).DurationSec
		if i == 0 {
			base = d
			continue
		}
		if d != base {
			t.Fatalf("alloc mode %v diverges: %.9f vs %.9f", m, d, base)
		}
	}
}

// TestKernelKnobsAgreeViaFacade: the event-kernel scheduler modes and the
// sharded allocation widths selected through the facade all reproduce the
// identical schedule.
func TestKernelKnobsAgreeViaFacade(t *testing.T) {
	spec := SortJob(2*GB, 8, 7)
	run := func(opts ...Option) float64 {
		base := []Option{WithScheduler(SchedulerPythia), WithOversubscription(10), WithSeed(7)}
		return New(append(base, opts...)...).RunJob(spec).DurationSec
	}
	base := run()
	if d := run(WithSchedulerMode(SchedHeap)); d != base {
		t.Fatalf("heap kernel diverges: %.9f vs %.9f", d, base)
	}
	for _, w := range []int{2, 8} {
		if d := run(WithAllocWorkers(w)); d != base {
			t.Fatalf("workers=%d diverges: %.9f vs %.9f", w, d, base)
		}
	}
}
