package pythia

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pythia/internal/flight"
)

// The flight recorder's end-to-end contracts, proven under the full chaos
// storm (every fault plane firing at once): the log is byte-identical across
// same-seed runs, every recorded span has its causal parent, and attaching
// the recorder never changes simulation results.

func TestFlightGoldenUnderChaos(t *testing.T) {
	for _, k := range allSchedulers {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			clA, resA := runChaosCluster(t, k, WithFlightRecorder())
			logA := clA.FlightJSONL()
			if len(logA) == 0 {
				t.Fatal("chaos run recorded no flight events")
			}
			events, err := flight.ParseJSONL(logA)
			if err != nil {
				t.Fatalf("own log does not parse: %v", err)
			}
			// No orphan spans, even mid-storm: every effect has its cause.
			if err := flight.VerifyChains(events); err != nil {
				t.Fatal(err)
			}
			// Same seed, byte-identical log.
			clB, _ := runChaosCluster(t, k, WithFlightRecorder())
			if !bytes.Equal(logA, clB.FlightJSONL()) {
				t.Fatal("same-seed chaos runs produced different flight logs")
			}
			// Pure observer: results match a recorder-less run exactly.
			_, resPlain := runChaosCluster(t, k)
			for i := range resA {
				if resA[i].DurationSec != resPlain[i].DurationSec {
					t.Fatalf("recorder changed job %q: %.9f vs %.9f",
						resA[i].Name, resA[i].DurationSec, resPlain[i].DurationSec)
				}
			}
		})
	}
}

// TestFlightFacadeSurface: the observability accessors all function through
// the facade on a Pythia chaos run.
func TestFlightFacadeSurface(t *testing.T) {
	cl, _ := runChaosCluster(t, SchedulerPythia, WithFlightRecorder(), WithSequenceRecording())
	if cl.FlightEventCount() == 0 {
		t.Fatal("no events")
	}
	q := cl.PredictionQuality()
	if q.Intents == 0 || q.Bookings == 0 || q.FabricFlows == 0 {
		t.Fatalf("quality volume counters empty: %+v", q)
	}
	if q.LeadSamples == 0 {
		t.Fatalf("no lead-time samples under Pythia: %+v", q)
	}
	prom := cl.PrometheusSnapshot()
	for _, want := range []string{
		"pythia_lead_time_seconds_bucket", "pythia_flight_events_total",
		"pythia_late_prediction_fraction", "pythia_install_rtt_seconds_sum",
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("Prometheus snapshot missing %q", want)
		}
	}
	sum := cl.FlightSummary()
	if !strings.Contains(sum, "critical path of worst aggregate") {
		t.Fatalf("summary has no critical path:\n%s", sum)
	}
	merged, err := cl.MergedChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var envelope struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(merged, &envelope); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	pids := map[float64]bool{}
	for _, ev := range envelope.TraceEvents {
		if pid, ok := ev["pid"].(float64); ok {
			pids[pid] = true
		}
	}
	if !pids[0] || !pids[1] {
		t.Fatalf("merged trace missing a process: fabric=%v control=%v", pids[0], pids[1])
	}
}

// TestFlightDisabledAccessors: without WithFlightRecorder the surface
// returns zero values, never panics.
func TestFlightDisabledAccessors(t *testing.T) {
	cl := New(WithScheduler(SchedulerPythia), WithSeed(2))
	cl.RunJob(WordCountJob(64*MB, 2, 1))
	if cl.FlightJSONL() != nil || cl.FlightEventCount() != 0 {
		t.Fatal("disabled recorder leaked events")
	}
	if cl.FlightSummary() != "" || cl.PrometheusSnapshot() != "" {
		t.Fatal("disabled recorder rendered output")
	}
	if q := cl.PredictionQuality(); q != (PredictionQuality{}) {
		t.Fatalf("disabled recorder scored quality: %+v", q)
	}
	if data, err := cl.MergedChromeTrace(); err != nil || data != nil {
		t.Fatalf("disabled recorder built a trace: %v %v", data, err)
	}
}
