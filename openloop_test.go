package pythia_test

import (
	"strings"
	"testing"

	"pythia"
)

func TestOpenLoopJobsDeterministic(t *testing.T) {
	cfg := pythia.OpenLoopConfig{BaseRateJobsPerSec: 0.1, Seed: 9}
	a := pythia.OpenLoopJobs(cfg, 1200)
	b := pythia.OpenLoopJobs(cfg, 1200)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("arrival counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].SubmitAtSec != b[i].SubmitAtSec || a[i].Tenant != b[i].Tenant {
			t.Fatalf("arrival %d diverged", i)
		}
	}
	if len(pythia.DefaultTenants()) != 3 {
		t.Fatal("default mix must have three tenants")
	}
}

func TestSubmitAtTryRunUntil(t *testing.T) {
	cl := pythia.New(pythia.WithScheduler(pythia.SchedulerPythia),
		pythia.WithOversubscription(10), pythia.WithSeed(7))
	// Two staggered jobs: the second arrives while the first shuffles.
	cl.SubmitAt(0, pythia.SortJob(1*pythia.GB, 4, 1))
	cl.SubmitAt(10, pythia.NutchJob(1*pythia.GB, 4, 2))
	res, err := cl.TryRunUntil(3600)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d, want 2", len(res))
	}
	for i, r := range res {
		if r.DurationSec <= 0 || r.ShuffleBytes <= 0 {
			t.Fatalf("job %d result degenerate: %+v", i, r)
		}
	}
	if res[0].Name != "sort" || res[1].Name != "nutch-indexing" {
		t.Fatalf("submission order lost: %v, %v", res[0].Name, res[1].Name)
	}
}

func TestTryRunUntilReportsUnfinished(t *testing.T) {
	cl := pythia.New(pythia.WithScheduler(pythia.SchedulerECMP),
		pythia.WithOversubscription(10), pythia.WithSeed(3))
	cl.SubmitAt(0, pythia.SortJob(2*pythia.GB, 4, 1))
	// A job submitted at the horizon cannot finish by it.
	cl.SubmitAt(119, pythia.SortJob(2*pythia.GB, 4, 2))
	res, err := cl.TryRunUntil(120)
	if err == nil {
		t.Fatal("second job cannot finish in 1 simulated second")
	}
	if !strings.Contains(err.Error(), "did not complete") {
		t.Fatalf("error text: %v", err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d, want 2 (unfinished keeps a zero slot)", len(res))
	}
	if res[1].DurationSec != 0 {
		t.Fatalf("unfinished job has non-zero result: %+v", res[1])
	}
	// Continuing the same simulation finishes the stragglers.
	res, err = cl.TryRunUntil(7200)
	if err != nil {
		t.Fatal(err)
	}
	if res[1].DurationSec <= 0 {
		t.Fatalf("straggler still unfinished: %+v", res[1])
	}
}

func TestOpenLoopStreamThroughCluster(t *testing.T) {
	// End-to-end: feed a short open-loop stream through SubmitAt and check
	// every arrival completes within a generous horizon.
	jobs := pythia.OpenLoopJobs(pythia.OpenLoopConfig{BaseRateJobsPerSec: 0.05, Seed: 4}, 300)
	if len(jobs) == 0 {
		t.Skip("no arrivals drawn in 300 s at this seed")
	}
	cl := pythia.New(pythia.WithScheduler(pythia.SchedulerPythia),
		pythia.WithOversubscription(10), pythia.WithSeed(4))
	for _, j := range jobs {
		cl.SubmitAt(j.SubmitAtSec, j.Spec)
	}
	res, err := cl.TryRunUntil(7200)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(jobs) {
		t.Fatalf("results = %d, want %d", len(res), len(jobs))
	}
}
