package pythia

import (
	"pythia/internal/openflow"
	"pythia/internal/sim"
)

// The facade's failure plane. Faults are scheduled against virtual time
// with At and injected through the Fail*/Recover* methods; every scheduler
// (ECMP, Hedera, Pythia) observes the same netsim event source and reacts —
// re-hashing, re-polling, or re-placing — without any internal imports.

// At schedules fn to run at tSec simulated seconds, before or during a
// RunJobs call. Use it to inject faults mid-job:
//
//	cl.At(20, func() { cl.FailLink(cl.Trunks()[0]) })
//	res := cl.RunJob(spec)
func (c *Cluster) At(tSec float64, fn func()) {
	c.eng.At(sim.Time(tSec), fn)
}

// Now returns the current simulated time in seconds.
func (c *Cluster) Now() float64 { return float64(c.eng.Now()) }

// FailLink fails a duplex cable (both directions). In-flight traffic on it
// starves until the active scheduler reroutes it or the link recovers.
func (c *Cluster) FailLink(l LinkID) { c.net.FailLink(l) }

// RecoverLink brings a failed cable back. Schedulers are notified and may
// spread traffic back onto it.
func (c *Cluster) RecoverLink(l LinkID) { c.net.RecoverLink(l) }

// FailSwitch fails a switch, downing every cable attached to it. Panics if
// the node is not a switch (see Switches for valid targets).
func (c *Cluster) FailSwitch(s SwitchID) { c.net.FailSwitch(s) }

// RecoverSwitch brings a failed switch back; its cables return to service
// unless individually failed via FailLink.
func (c *Cluster) RecoverSwitch(s SwitchID) { c.net.RecoverSwitch(s) }

// FailController severs the SDN controller's management connectivity: rule
// installs are lost and retried until the budget set by
// WithControlPlaneFaults runs out, at which point Pythia degrades affected
// aggregates to the default ECMP pipeline. No-op for schedulers without a
// central controller (ECMP, Hedera).
func (c *Cluster) FailController() {
	if c.ofc != nil {
		c.ofc.FailController()
	}
}

// RecoverController restores management connectivity; Pythia reconciles by
// re-placing the aggregates that degraded during the outage.
func (c *Cluster) RecoverController() {
	if c.ofc != nil {
		c.ofc.RecoverController()
	}
}

// ControlPlaneFaults models management-channel unreliability for the SDN
// control plane (Pythia's rule installs). Zero-valued fields take the
// defaults noted below.
type ControlPlaneFaults struct {
	// InstallTimeoutSec is how long the controller waits for a FLOW_MOD
	// ack before retransmitting (default 0.05 s).
	InstallTimeoutSec float64
	// MaxRetries bounds retransmissions per rule (default 3); past the
	// budget the install fails and the aggregate degrades to ECMP.
	MaxRetries int
	// RetryBackoffSec delays the first retransmission and doubles per
	// attempt (default 0.1 s).
	RetryBackoffSec float64
	// ExtraDelaySec is added to every management-channel delivery.
	ExtraDelaySec float64
	// DropEvery loses every Nth FLOW_MOD transmission (0 disables drops);
	// the schedule is deterministic, so runs stay reproducible.
	DropEvery int
}

// WithControlPlaneFaults turns on the fault-aware install path (timeout,
// bounded exponential-backoff retries, deterministic loss) for the Pythia
// scheduler's controller. Required for FailController to have effect —
// without a timeout, installs issued during an outage would wait forever.
func WithControlPlaneFaults(f ControlPlaneFaults) Option {
	return func(c *config) { c.cpFaults = &f }
}

func (f ControlPlaneFaults) toInternal() openflow.FaultConfig {
	cfg := openflow.FaultConfig{
		InstallTimeout: sim.Duration(f.InstallTimeoutSec),
		MaxRetries:     f.MaxRetries,
		RetryBackoff:   sim.Duration(f.RetryBackoffSec),
		ExtraDelay:     sim.Duration(f.ExtraDelaySec),
	}
	if cfg.InstallTimeout <= 0 {
		cfg.InstallTimeout = 0.05 * sim.Second
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 3
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 0.1 * sim.Second
	}
	if f.DropEvery > 0 {
		n := uint64(f.DropEvery)
		cfg.Drop = func(seq uint64) bool { return seq%n == 0 }
	}
	return cfg
}

// FaultReport summarizes the failure plane's activity so far.
type FaultReport struct {
	// Retransmissions counts timed-out FLOW_MODs that were re-sent and
	// DroppedFlowMods the transmissions lost to faults or outage.
	Retransmissions uint64
	DroppedFlowMods uint64
	// AggregatesDegraded counts Pythia aggregates that fell back to the
	// ECMP pipeline; Reconciliations those re-placed after the controller
	// recovered; FlowsRescued the in-flight flows rerouted off dead paths.
	AggregatesDegraded int
	Reconciliations    int
	FlowsRescued       int
}

// Faults reports the cluster's fault-plane counters (zero for schedulers
// without the relevant machinery).
func (c *Cluster) Faults() FaultReport {
	var r FaultReport
	if c.ofc != nil {
		r.Retransmissions = c.ofc.Retransmissions
		r.DroppedFlowMods = c.ofc.DroppedFlowMods
	}
	if c.py != nil {
		r.AggregatesDegraded = c.py.AggregatesDegraded
		r.Reconciliations = c.py.Reconciliations
		r.FlowsRescued = c.py.FlowsRescued
	}
	if c.al != nil {
		r.FlowsRescued += c.al.FlowsRescued
	}
	if c.hed != nil {
		r.FlowsRescued += c.hed.FlowsRescued
	}
	return r
}
