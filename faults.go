package pythia

import (
	"pythia/internal/instrument"
	"pythia/internal/mgmtnet"
	"pythia/internal/openflow"
	"pythia/internal/sim"
)

// Fault options and the facade's failure plane — see the package doc's
// "Configuring a cluster" index. Faults are scheduled against virtual time
// with At and injected through the Fail*/Recover* methods; every scheduler
// (ECMP, Hedera, Pythia) observes the same netsim event source and reacts —
// re-hashing, re-polling, or re-placing — without any internal imports.

// At schedules fn to run at tSec simulated seconds, before or during a
// RunJobs call. Use it to inject faults mid-job:
//
//	cl.At(20, func() { cl.FailLink(cl.Trunks()[0]) })
//	res := cl.RunJob(spec)
func (c *Cluster) At(tSec float64, fn func()) {
	c.eng.At(sim.Time(tSec), fn)
}

// Now returns the current simulated time in seconds.
func (c *Cluster) Now() float64 { return float64(c.eng.Now()) }

// FailLink fails a duplex cable (both directions). In-flight traffic on it
// starves until the active scheduler reroutes it or the link recovers.
func (c *Cluster) FailLink(l LinkID) { c.net.FailLink(l) }

// RecoverLink brings a failed cable back. Schedulers are notified and may
// spread traffic back onto it.
func (c *Cluster) RecoverLink(l LinkID) { c.net.RecoverLink(l) }

// FailSwitch fails a switch, downing every cable attached to it. Panics if
// the node is not a switch (see Switches for valid targets).
func (c *Cluster) FailSwitch(s SwitchID) { c.net.FailSwitch(s) }

// RecoverSwitch brings a failed switch back; its cables return to service
// unless individually failed via FailLink.
func (c *Cluster) RecoverSwitch(s SwitchID) { c.net.RecoverSwitch(s) }

// FailController severs the SDN controller's management connectivity: rule
// installs are lost and retried until the budget set by
// WithControlPlaneFaults runs out, at which point Pythia degrades affected
// aggregates to the default ECMP pipeline. No-op for schedulers without a
// central controller (ECMP, Hedera).
func (c *Cluster) FailController() {
	if c.ofc != nil {
		c.ofc.FailController()
	}
}

// RecoverController restores management connectivity; Pythia reconciles by
// re-placing the aggregates that degraded during the outage.
func (c *Cluster) RecoverController() {
	if c.ofc != nil {
		c.ofc.RecoverController()
	}
}

// ControlPlaneFaults models management-channel unreliability for the SDN
// control plane (Pythia's rule installs). Zero-valued fields take the
// defaults noted below.
type ControlPlaneFaults struct {
	// InstallTimeoutSec is how long the controller waits for a FLOW_MOD
	// ack before retransmitting (default 0.05 s).
	InstallTimeoutSec float64
	// MaxRetries bounds retransmissions per rule (default 3); past the
	// budget the install fails and the aggregate degrades to ECMP.
	MaxRetries int
	// RetryBackoffSec delays the first retransmission and doubles per
	// attempt (default 0.1 s).
	RetryBackoffSec float64
	// ExtraDelaySec is added to every management-channel delivery.
	ExtraDelaySec float64
	// DropEvery loses every Nth FLOW_MOD transmission (0 disables drops);
	// the schedule is deterministic, so runs stay reproducible.
	DropEvery int
}

// WithControlPlaneFaults turns on the fault-aware install path (timeout,
// bounded exponential-backoff retries, deterministic loss) for the Pythia
// scheduler's controller. Required for FailController to have effect —
// without a timeout, installs issued during an outage would wait forever.
func WithControlPlaneFaults(f ControlPlaneFaults) Option {
	return func(c *config) { c.cpFaults = &f }
}

func (f ControlPlaneFaults) toInternal() openflow.FaultConfig {
	cfg := openflow.FaultConfig{
		InstallTimeout: sim.Duration(f.InstallTimeoutSec),
		MaxRetries:     f.MaxRetries,
		RetryBackoff:   sim.Duration(f.RetryBackoffSec),
		ExtraDelay:     sim.Duration(f.ExtraDelaySec),
	}
	if cfg.InstallTimeout <= 0 {
		cfg.InstallTimeout = 0.05 * sim.Second
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 3
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 0.1 * sim.Second
	}
	if f.DropEvery > 0 {
		n := uint64(f.DropEvery)
		cfg.Drop = func(seq uint64) bool { return seq%n == 0 }
	}
	return cfg
}

// MgmtFaults models the management star's unreliability — the prediction
// plane's transport. Faults are drawn from a dedicated seeded stream, so
// runs stay bit-identical per seed; the zero value is the perfectly
// reliable legacy fabric.
type MgmtFaults struct {
	// DropProb is the per-message loss probability; DupProb the probability
	// a message is delivered twice (the retransmit-storm shape the
	// collector's idempotence guards against).
	DropProb float64
	DupProb  float64
	// ExtraDelaySec is added to every delivery; JitterMaxSec adds a uniform
	// [0, JitterMaxSec) per-delivery delay on top.
	ExtraDelaySec float64
	JitterMaxSec  float64
	// Seed fixes the fault stream (0 is a valid seed).
	Seed uint64
	// DeferDuringOutage queues sends attempted while the star is down
	// (FailMgmt) and releases them FIFO on RecoverMgmt; by default such
	// sends are dropped, as with a rebooting management switch.
	DeferDuringOutage bool
}

func (f MgmtFaults) toInternal() mgmtnet.FaultConfig {
	return mgmtnet.FaultConfig{
		DropProb:          f.DropProb,
		DupProb:           f.DupProb,
		ExtraDelay:        sim.Duration(f.ExtraDelaySec),
		JitterMax:         sim.Duration(f.JitterMaxSec),
		Seed:              f.Seed,
		DeferDuringOutage: f.DeferDuringOutage,
	}
}

// WithMgmtFaults installs the management-network fault model. It implies
// WithExplicitControlPlane: there is no management network to fault under
// the fixed-latency shortcut.
func WithMgmtFaults(f MgmtFaults) Option {
	return func(c *config) { c.mgmtFaults = &f }
}

// MonitorFaults models per-host instrumentation-monitor crashes. While a
// monitor is down its host's spill notifications and reducer starts are
// missed; on restart the monitor re-scans the spill directory and emits the
// backlog as late, batched intents.
type MonitorFaults struct {
	// CrashProb is drawn once per spill notification: on a hit, the host's
	// monitor dies just before processing it.
	CrashProb float64
	// DowntimeSec is how long a crashed monitor stays down before its
	// supervisor restarts it (default 10 s).
	DowntimeSec float64
	// Seed fixes the crash stream.
	Seed uint64
}

func (f MonitorFaults) toInternal() instrument.MonitorFaultConfig {
	return instrument.MonitorFaultConfig{
		CrashProb: f.CrashProb,
		Downtime:  sim.Duration(f.DowntimeSec),
		Seed:      f.Seed,
	}
}

// WithMonitorFaults enables seeded per-host monitor crash/restart.
func WithMonitorFaults(f MonitorFaults) Option {
	return func(c *config) { c.monFaults = &f }
}

// WithPredictionError injects seeded multiplicative noise into every
// per-reducer predicted wire size: each positive prediction is scaled by a
// uniform factor in [1-f, 1+f). The paper's Fig. 5 regime is a systematic
// 3–7% overestimate; this knob measures how scheduling quality degrades as
// estimates get noisier. factor 0 disables the noise entirely (bit-identical
// to the exact pipeline).
func WithPredictionError(factor float64, seed uint64) Option {
	return func(c *config) {
		c.predErrFactor = factor
		c.predErrSeed = seed
	}
}

// WithBookingTTL garbage-collects Pythia bookings and deferred intents whose
// flows never materialize — a lost ReducerUp, a dead job, a JobDone dropped
// on the management network — releasing their path reservations after sec
// simulated seconds. 0 disables the sweep. Only meaningful under
// SchedulerPythia.
func WithBookingTTL(sec float64) Option {
	return func(c *config) { c.bookingTTLSec = sec }
}

// FailMgmt downs the whole management star (the management switch reboots):
// prediction notifications, reducer-up events, job-done messages and — under
// the explicit control plane — FLOW_MODs sent during the outage are dropped,
// or deferred under MgmtFaults.DeferDuringOutage. Messages already on the
// wire still arrive. No-op unless the cluster has a management network
// (WithExplicitControlPlane or WithMgmtFaults).
func (c *Cluster) FailMgmt() {
	if c.mn != nil {
		c.mn.Fail()
	}
}

// RecoverMgmt brings the management star back, releasing any deferred sends
// in FIFO order.
func (c *Cluster) RecoverMgmt() {
	if c.mn != nil {
		c.mn.Recover()
	}
}

// CrashMonitor kills the instrumentation monitor on the i-th host (scripted
// fault injection). If WithMonitorFaults configured a downtime the
// supervisor restarts it automatically; otherwise call RestartMonitor.
func (c *Cluster) CrashMonitor(hostIndex int) {
	c.mw.CrashMonitor(c.hosts[hostIndex])
}

// RestartMonitor restarts the i-th host's monitor: the fresh process
// re-scans the spill directory and emits missed predictions as late,
// batched intents.
func (c *Cluster) RestartMonitor(hostIndex int) {
	c.mw.RestartMonitor(c.hosts[hostIndex])
}

// NumHosts reports the cluster's server count (valid CrashMonitor indices
// are [0, NumHosts)).
func (c *Cluster) NumHosts() int { return len(c.hosts) }

// FaultReport summarizes the failure plane's activity so far.
type FaultReport struct {
	// Retransmissions counts timed-out FLOW_MODs that were re-sent and
	// DroppedFlowMods the transmissions lost to faults or outage.
	Retransmissions uint64
	DroppedFlowMods uint64
	// AggregatesDegraded counts Pythia aggregates that fell back to the
	// ECMP pipeline; Reconciliations those re-placed after the controller
	// recovered; FlowsRescued the in-flight flows rerouted off dead paths.
	AggregatesDegraded int
	Reconciliations    int
	FlowsRescued       int

	// Management-network telemetry (explicit control plane only):
	// MgmtMessages/MgmtBytes count traffic put on the wire toward delivery,
	// MgmtMaxQueueDelaySec is the worst per-sender serialization wait, and
	// MgmtDropped/MgmtDuplicated/MgmtDeferred count injected-fault and
	// outage casualties.
	MgmtMessages         uint64
	MgmtBytes            float64
	MgmtMaxQueueDelaySec float64
	MgmtDropped          uint64
	MgmtDuplicated       uint64
	MgmtDeferred         uint64

	// Prediction-plane fault counters: monitor deaths, spill notifications
	// lost while down, predictions recovered by restart re-scans, and
	// control messages discarded because their job finished while they were
	// in flight.
	MonitorCrashes  int
	MissedSpills    int
	LateIntents     int
	InFlightDropped int

	// Collector defenses: DedupHits counts exact duplicate intents dropped
	// by the (job, map, attempt) idempotence set, DuplicateIntents the
	// cross-attempt re-predictions absorbed by booking replacement, and
	// ExpiredBookings/ExpiredIntents the reservations reclaimed by the
	// booking TTL. LeakedBookings is the number of reservations still held
	// for completed jobs — zero in a healthy or TTL-protected run.
	DedupHits        int
	DuplicateIntents int
	ExpiredBookings  int
	ExpiredIntents   int
	LeakedBookings   int
}

// Faults reports the cluster's fault-plane counters (zero for schedulers
// without the relevant machinery).
func (c *Cluster) Faults() FaultReport {
	var r FaultReport
	if c.ofc != nil {
		r.Retransmissions = c.ofc.Retransmissions
		r.DroppedFlowMods = c.ofc.DroppedFlowMods
	}
	if c.py != nil {
		r.AggregatesDegraded = c.py.AggregatesDegraded
		r.Reconciliations = c.py.Reconciliations
		r.FlowsRescued = c.py.FlowsRescued
		r.DedupHits = c.py.DedupHits()
		r.DuplicateIntents = c.py.DuplicateIntents()
		r.ExpiredBookings = c.py.ExpiredBookings()
		r.ExpiredIntents = c.py.ExpiredIntents()
		for _, job := range c.doneJobs {
			r.LeakedBookings += c.py.OutstandingBookings(job)
		}
	}
	if c.mn != nil {
		r.MgmtMessages = c.mn.Messages
		r.MgmtBytes = c.mn.Bytes
		r.MgmtMaxQueueDelaySec = float64(c.mn.MaxQueueDelay)
		r.MgmtDropped = c.mn.Dropped
		r.MgmtDuplicated = c.mn.Duplicated
		r.MgmtDeferred = c.mn.Deferred
	}
	r.MonitorCrashes = c.mw.MonitorCrashes
	r.MissedSpills = c.mw.MissedSpills
	r.LateIntents = c.mw.LateIntents
	r.InFlightDropped = c.mw.InFlightDropped
	if c.al != nil {
		r.FlowsRescued += c.al.FlowsRescued
	}
	if c.hed != nil {
		r.FlowsRescued += c.hed.FlowsRescued
	}
	return r
}
