package pythia

import (
	"errors"
	"strings"
	"testing"
)

// The panicking runners' error-contract audit: every panicking entry point
// has a Try counterpart, and every "run stopped with work left" error
// matches ErrUnfinished.

// TestTryRunJobsUnfinishedSentinel: a deadline too short for the job yields
// an ErrUnfinished error from TryRunJobs (and a panic with the same text
// from RunJobs).
func TestTryRunJobsUnfinishedSentinel(t *testing.T) {
	cl := New(WithDeadline(0.001))
	_, err := cl.TryRunJobs(ToySortJob())
	if err == nil {
		t.Fatal("expected an error from a 1ms deadline")
	}
	if !errors.Is(err, ErrUnfinished) {
		t.Fatalf("error %v does not match ErrUnfinished", err)
	}

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("RunJobs did not panic on the same deadline")
		}
		if !strings.Contains(r.(string), ErrUnfinished.Error()) {
			t.Fatalf("panic %q does not carry the ErrUnfinished text", r)
		}
	}()
	New(WithDeadline(0.001)).RunJobs(ToySortJob())
}

// TestTryRunUntilUnfinishedSentinel: jobs past the horizon match the same
// sentinel through the open-loop entry point.
func TestTryRunUntilUnfinishedSentinel(t *testing.T) {
	cl := New()
	cl.SubmitAt(0, ToySortJob())
	if _, err := cl.TryRunUntil(0.001); !errors.Is(err, ErrUnfinished) {
		t.Fatalf("TryRunUntil error %v does not match ErrUnfinished", err)
	}
}

// TestTryCompareUnfinishedSentinel: TryCompare surfaces a failing run as an
// ErrUnfinished error naming the scheduler; Compare panics on it.
func TestTryCompareUnfinishedSentinel(t *testing.T) {
	_, _, _, err := TryCompare(ToySortJob(), SchedulerECMP, SchedulerPythia, WithDeadline(0.001))
	if !errors.Is(err, ErrUnfinished) {
		t.Fatalf("TryCompare error %v does not match ErrUnfinished", err)
	}
	if !strings.Contains(err.Error(), SchedulerECMP.String()) {
		t.Fatalf("TryCompare error %v does not name the failing scheduler", err)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("Compare did not panic on a failing run")
		}
	}()
	Compare(ToySortJob(), SchedulerECMP, SchedulerPythia, WithDeadline(0.001))
}

// TestTryCompareMatchesCompare: on a healthy run the Try variant returns
// the identical numbers.
func TestTryCompareMatchesCompare(t *testing.T) {
	ta, tb, sp := Compare(ToySortJob(), SchedulerECMP, SchedulerPythia, WithSeed(3))
	ta2, tb2, sp2, err := TryCompare(ToySortJob(), SchedulerECMP, SchedulerPythia, WithSeed(3))
	if err != nil {
		t.Fatalf("TryCompare: %v", err)
	}
	if ta != ta2 || tb != tb2 || sp != sp2 {
		t.Fatalf("TryCompare (%v,%v,%v) != Compare (%v,%v,%v)", ta2, tb2, sp2, ta, tb, sp)
	}
}

// TestCollectorShardsInvariantFacade: WithCollectorShards never changes
// results — the facade-level spelling of the sharding determinism contract.
func TestCollectorShardsInvariantFacade(t *testing.T) {
	run := func(shards int) JobResult {
		cl := New(WithScheduler(SchedulerPythia), WithOversubscription(10),
			WithSeed(7), WithCriticality(), WithCollectorShards(shards))
		return cl.RunJob(SortJob(2*GB, 8, 7))
	}
	ref := run(1)
	for _, shards := range []int{2, 8} {
		if got := run(shards); got != ref {
			t.Errorf("shards=%d: result %+v != %+v", shards, got, ref)
		}
	}
}
