package pythia

import (
	"fmt"

	"pythia/internal/netsim"
	"pythia/internal/topology"
)

// Topology options: the fabric under test — see the package doc's
// "Configuring a cluster" index.

// WithHostsPerRack sizes the racks (default 5, the paper's testbed).
func WithHostsPerRack(n int) Option { return func(c *config) { c.hostsPerRack = n } }

// WithTrunks sets the number of parallel inter-rack links (default 2).
func WithTrunks(n int) Option { return func(c *config) { c.trunks = n } }

// WithLinkRateGbps sets every link's rate (default 1 Gbps).
func WithLinkRateGbps(g float64) Option { return func(c *config) { c.linkBps = g * 1e9 } }

// WithOversubscription loads the trunks with CBR background traffic so the
// bandwidth left to Hadoop is rackBandwidth/n, split asymmetrically across
// trunks as in the paper's evaluation. n <= 0 disables background traffic.
func WithOversubscription(n int) Option { return func(c *config) { c.oversub = n } }

// LinkID identifies a directed fabric link on the facade. Duplex cables are
// two directed links; facade fault methods operate on whole cables, so
// either direction's ID names the cable.
type LinkID = topology.LinkID

// SwitchID identifies a switch node on the facade.
type SwitchID = topology.NodeID

// SwitchInfo describes one switch of the cluster fabric.
type SwitchInfo struct {
	ID   SwitchID
	Name string
	// Rack is the rack a ToR switch serves; -1 for spine/core switches.
	Rack int
}

// AllocMode selects the network's max-min allocation engine. All modes
// produce bit-identical schedules (golden-tested); they differ only in
// asymptotic cost, which matters for large-fabric benchmarks.
type AllocMode = netsim.AllocMode

const (
	// AllocIncremental (the default) coalesces each simulated instant's
	// mutations into one component-scoped allocation pass.
	AllocIncremental = netsim.AllocIncremental
	// AllocIndexed runs an eager indexed full pass after every mutation.
	AllocIndexed = netsim.AllocIndexed
	// AllocScan is the original reference implementation (full rescans).
	AllocScan = netsim.AllocScan
)

// WithAllocMode selects the allocation engine (default AllocIncremental).
// Benchmarks use it to compare allocator generations without reaching into
// internal packages.
func WithAllocMode(m AllocMode) Option { return func(c *config) { c.allocMode = &m } }

// TopologySpec names a fabric shape for WithTopology. Build one with
// TwoRackTopology, LeafSpineTopology or FatTreeTopology.
type TopologySpec struct {
	name         string
	hostsPerRack int
	build        func(linkBps float64) (*topology.Graph, []topology.NodeID, []topology.LinkID)
}

// Name returns a human-readable description of the shape.
func (t TopologySpec) Name() string { return t.name }

// TwoRackTopology is the paper's evaluation fabric: two ToR switches, each
// serving hostsPerRack servers, joined by trunks parallel cables. This is
// the default (hostsPerRack=5, trunks=2) and the only shape
// WithOversubscription's background-traffic model applies to.
func TwoRackTopology(hostsPerRack, trunks int) TopologySpec {
	return TopologySpec{
		name:         fmt.Sprintf("two-rack(%d hosts/rack, %d trunks)", hostsPerRack, trunks),
		hostsPerRack: hostsPerRack,
		build: func(linkBps float64) (*topology.Graph, []topology.NodeID, []topology.LinkID) {
			return topology.TwoRack(hostsPerRack, trunks, linkBps)
		},
	}
}

// LeafSpineTopology is a two-tier Clos fabric: leaves ToR switches, each
// serving hostsPerRack servers, with every leaf cabled to every one of
// spines spine switches. Spine redundancy makes it the natural shape for
// switch-failure experiments.
func LeafSpineTopology(leaves, spines, hostsPerRack int) TopologySpec {
	return TopologySpec{
		name:         fmt.Sprintf("leaf-spine(%d leaves, %d spines, %d hosts/rack)", leaves, spines, hostsPerRack),
		hostsPerRack: hostsPerRack,
		build: func(linkBps float64) (*topology.Graph, []topology.NodeID, []topology.LinkID) {
			g, hosts := topology.LeafSpine(leaves, spines, hostsPerRack, linkBps)
			return g, hosts, nil
		},
	}
}

// FatTreeTopology is a k-ary fat-tree (k even) with hostsPerEdge servers
// per edge switch — the scale shape of the benchmark suite.
func FatTreeTopology(k, hostsPerEdge int) TopologySpec {
	return TopologySpec{
		name:         fmt.Sprintf("fat-tree(k=%d, %d hosts/edge)", k, hostsPerEdge),
		hostsPerRack: hostsPerEdge,
		build: func(linkBps float64) (*topology.Graph, []topology.NodeID, []topology.LinkID) {
			g, hosts := topology.FatTree(k, hostsPerEdge, linkBps)
			return g, hosts, nil
		},
	}
}

// WithTopology replaces the default two-rack fabric. It overrides
// WithHostsPerRack and WithTrunks; WithLinkRateGbps still applies.
// WithOversubscription's trunk background model only applies to two-rack
// shapes (other fabrics have no designated trunk pair to load).
func WithTopology(t TopologySpec) Option { return func(c *config) { c.topo = &t } }
