package pythia

import (
	"pythia/internal/flight"
	"pythia/internal/netflow"
	"pythia/internal/sim"
	"pythia/internal/topology"
	"pythia/internal/trace"
)

// Observability options and fabric introspection: pure observers plus
// enough surface to target faults and read link-level telemetry without
// importing internal packages — see the package doc's "Configuring a
// cluster" index.

// WithSequenceRecording attaches the Fig. 1a trace recorder to the first
// submitted job; retrieve the diagram with SequenceDiagram after RunJob.
func WithSequenceRecording() Option { return func(c *config) { c.record = true } }

// WithFlightRecorder attaches the cross-plane flight recorder: every
// prediction's lifecycle (spill → intent → booking → placement → rule
// install → fabric flow) leaves timestamped events retrievable with
// FlightJSONL, FlightSummary, PredictionQuality, PrometheusSnapshot and
// MergedChromeTrace. The recorder is a pure observer — enabling it never
// changes simulation results — and a seeded run's JSONL export is
// byte-identical across runs.
func WithFlightRecorder() Option { return func(c *config) { c.flight = true } }

// Trunks returns the fail-candidate cables of the fabric (forward-direction
// link IDs): the designated inter-rack trunks on the two-rack shape, or
// every switch-to-switch cable on other topologies, in ID order.
func (c *Cluster) Trunks() []LinkID {
	if len(c.trunks) > 0 {
		return append([]LinkID(nil), c.trunks...)
	}
	var out []LinkID
	for _, l := range c.g.Links() {
		if c.g.Node(l.From).Kind != topology.Switch || c.g.Node(l.To).Kind != topology.Switch {
			continue
		}
		// One entry per duplex cable: keep the lower-ID direction.
		if r, ok := c.g.Reverse(l.ID); ok && r < l.ID {
			continue
		}
		out = append(out, l.ID)
	}
	return out
}

// Switches lists the fabric's switches in ID order — the valid targets for
// FailSwitch.
func (c *Cluster) Switches() []SwitchInfo {
	var out []SwitchInfo
	for _, id := range c.g.Switches() {
		n := c.g.Node(id)
		out = append(out, SwitchInfo{ID: id, Name: n.Name, Rack: n.Rack})
	}
	return out
}

// LinkName returns the cable's human-readable name.
func (c *Cluster) LinkName(l LinkID) string { return c.g.Link(l).Name }

// SwitchName returns the switch's human-readable name.
func (c *Cluster) SwitchName(s SwitchID) string { return c.g.Node(s).Name }

// LinkCarriedGB reports the data gigabytes a cable carried so far, summing
// both directions and excluding background traffic.
func (c *Cluster) LinkCarriedGB(l LinkID) float64 {
	bits := c.net.LinkBits(l)
	if r, ok := c.g.Reverse(l); ok {
		bits += c.net.LinkBits(r)
	}
	return bits / 8 / 1e9
}

// ProbeSample is one link-load observation.
type ProbeSample struct {
	// TSec is the sample time in simulated seconds.
	TSec float64
	// Utilization is the fraction of capacity in use (background + flows).
	Utilization float64
	// ShuffleBps is the shuffle-flow portion of the load in bits/s.
	ShuffleBps float64
}

// Probe samples selected links periodically (NetFlow-style telemetry).
type Probe struct {
	p *netflow.LinkProbe
	g *topology.Graph
}

// Probe starts sampling the given cables (both directions of each) every
// periodSec simulated seconds. Start probes before RunJobs.
func (c *Cluster) Probe(periodSec float64, links ...LinkID) *Probe {
	var ls []topology.LinkID
	for _, l := range links {
		ls = append(ls, l)
		if r, ok := c.g.Reverse(l); ok {
			ls = append(ls, r)
		}
	}
	return &Probe{p: netflow.NewLinkProbe(c.eng, c.net, ls, sim.Duration(periodSec)), g: c.g}
}

// Series returns the samples recorded for one direction of a cable (pass
// the ID given to Probe for the forward direction).
func (p *Probe) Series(l LinkID) []ProbeSample {
	var out []ProbeSample
	for _, s := range p.p.Series(l) {
		out = append(out, ProbeSample{TSec: float64(s.T), Utilization: s.Utilization, ShuffleBps: s.ShuffleBps})
	}
	return out
}

// MeanUtilization averages a link's sampled utilization.
func (p *Probe) MeanUtilization(l LinkID) float64 { return p.p.MeanUtilization(l) }

// PeakShuffleBps returns the largest sampled shuffle rate on a link.
func (p *Probe) PeakShuffleBps(l LinkID) float64 { return p.p.PeakShuffleBps(l) }

// Flight recorder surface (requires WithFlightRecorder; all accessors return
// zero values without it).

// PredictionQuality scores how well the prediction plane raced the shuffle:
// lead time percentiles, late fraction, and predicted-vs-actual byte error.
type PredictionQuality = flight.Quality

// FlightJSONL serializes the flight-recorder log as JSON Lines, one event
// per line in simulation order. For a fixed seed the output is
// byte-identical across runs. Nil without WithFlightRecorder.
func (c *Cluster) FlightJSONL() []byte {
	if c.fr == nil {
		return nil
	}
	return c.fr.JSONL()
}

// FlightEventCount reports how many flight events were recorded.
func (c *Cluster) FlightEventCount() int { return c.fr.Len() }

// FlightSummary renders a per-job digest of the flight log: event volumes,
// per-plane latencies, and the critical path of each job's worst aggregate.
func (c *Cluster) FlightSummary() string {
	if c.fr == nil {
		return ""
	}
	return flight.Summarize(c.fr.Events())
}

// PredictionQuality computes lead-time and byte-error scores from the
// flight log.
func (c *Cluster) PredictionQuality() PredictionQuality {
	if c.fr == nil {
		return PredictionQuality{}
	}
	return flight.ComputeQuality(c.fr.Events())
}

// PrometheusSnapshot renders the flight log's derived metrics — per-kind
// event counters, per-plane latency histograms, lead-time histogram, late
// fraction, byte error — in Prometheus text exposition format. Deterministic
// for a fixed seed.
func (c *Cluster) PrometheusSnapshot() string {
	if c.fr == nil {
		return ""
	}
	return flight.BuildMetrics(c.fr.Events()).PrometheusText()
}

// MergedChromeTrace exports one Chrome/Perfetto trace combining the fabric
// task spans (requires WithSequenceRecording) with control-plane lanes from
// the flight recorder (requires WithFlightRecorder). Either half may be
// absent; with neither option the result is nil.
func (c *Cluster) MergedChromeTrace() ([]byte, error) {
	if c.recorder == nil && c.fr == nil {
		return nil, nil
	}
	return trace.MergedChrome(c.recorder, c.fr.Events())
}
