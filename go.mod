module pythia

go 1.22
