package pythia

import (
	"fmt"

	"pythia/internal/hadoop"
	"pythia/internal/sim"
	"pythia/internal/workload"
)

// Open-loop facade: timed submissions and the continuous workload plane.
// Closed-loop entry points (RunJobs, TryRunJobs) submit everything at t=0
// and wait; here jobs enter at their arrival times whether or not earlier
// ones have finished, which is how production clusters actually load up —
// and the regime where tail latency and SLO attainment are defined.

// Tenant re-exports one slice of the open-loop mix: arrival share,
// admission priority, completion-time SLO, size distribution and job-class
// fractions.
type Tenant = workload.Tenant

// OpenLoopConfig re-exports the continuous arrival process's knobs:
// Poisson base rate, diurnal modulation, tenant mix, seed.
type OpenLoopConfig = workload.OpenLoopConfig

// OpenJob re-exports one open-loop arrival: the job spec plus submission
// time and tenant metadata.
type OpenJob = workload.OpenJob

// DefaultTenants is the standard three-way interactive/analytics/batch mix.
func DefaultTenants() []Tenant { return workload.DefaultTenants() }

// OpenLoopJobs materializes every arrival of the seeded open-loop stream
// with SubmitAtSec < horizonSec, in arrival order. Identical configs yield
// identical arrivals.
func OpenLoopJobs(cfg OpenLoopConfig, horizonSec float64) []OpenJob {
	return workload.OpenLoop(cfg).Until(horizonSec)
}

// timedSubmission tracks one SubmitAt entry until TryRunUntil reports it.
type timedSubmission struct {
	spec *JobSpec
	job  *hadoop.Job
	err  error
}

// SubmitAt schedules spec for submission at tSec simulated seconds. Unlike
// TryRunJobs, nothing waits for earlier jobs: this is the open-loop entry
// point. Submission errors and results surface from TryRunUntil.
func (c *Cluster) SubmitAt(tSec float64, spec *JobSpec) {
	s := &timedSubmission{spec: spec}
	c.timed = append(c.timed, s)
	c.eng.At(sim.Time(tSec), func() {
		j, err := c.cluster.Submit(spec)
		if err != nil {
			s.err = fmt.Errorf("submit %q at t=%.1f: %w", spec.Name, tSec, err)
			return
		}
		s.job = j
	})
}

// TryRunUntil drives the simulation to horizonSec and reports every job
// scheduled with SubmitAt so far, in submission order, with the TryRunJobs
// error contract: submission failures and jobs unfinished at the horizon
// yield a non-nil error alongside the results of whatever did complete
// (unfinished jobs keep a zero JobResult). Calling it again after more
// SubmitAt entries continues the same simulation and re-reports the full
// history.
func (c *Cluster) TryRunUntil(horizonSec float64) ([]JobResult, error) {
	c.eng.RunUntil(sim.Time(horizonSec))
	out := make([]JobResult, len(c.timed))
	var unfinished []string
	for i, s := range c.timed {
		if s.err != nil {
			return nil, s.err
		}
		j := s.job
		if j == nil || !j.Done {
			unfinished = append(unfinished, s.spec.Name)
			continue
		}
		out[i] = JobResult{
			Name:           s.spec.Name,
			DurationSec:    float64(j.Duration()),
			MapPhaseSec:    float64(j.MapPhaseEnd.Sub(j.Submitted)),
			ShuffleSec:     float64(j.ShuffleEnd.Sub(j.Submitted)),
			ShuffleBytes:   s.spec.TotalShuffleBytes(),
			RulesInstalled: c.jobRules[j.ID],
		}
	}
	if len(unfinished) > 0 {
		return out, fmt.Errorf("%d of %d %w (starved network or deadline hit): %v",
			len(unfinished), len(c.timed), ErrUnfinished, unfinished)
	}
	return out, nil
}
