# Pythia reproduction — build/test/bench entry points. Everything is
# stdlib-only Go; no external dependencies or network access required.

GO ?= go

.PHONY: all build vet test test-short cover bench bench-paper bench-scale bench-steady bench-serve bench-recovery bench-compare profile fuzz figures examples api api-check scrape-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

cover:
	$(GO) test -cover ./...

# One testing.B benchmark per paper table/figure (see bench_test.go).
bench:
	$(GO) test -bench=. -benchmem ./...

# The same benchmarks at the paper's published input sizes.
bench-paper:
	$(GO) test -bench=. -benchmem -paperscale .

# Machine-readable scale-benchmark artifact (ns/op + allocs/op for every
# allocator mode at every fat-tree size). CI uploads this as BENCH_scale.json.
bench-scale:
	$(GO) test -bench=ScaleFatTree -benchmem -benchtime=1x -run='^$$' . \
		| $(GO) run ./cmd/bench2json -o BENCH_scale.json
	@echo wrote BENCH_scale.json

# Machine-readable open-loop steady-state frontier (E14): arrival-rate ×
# scheduler sweep with windowed tails and SLO attainment. CI uploads this
# as BENCH_steady.json.
bench-steady:
	$(GO) run ./cmd/pythia-bench -experiment steady -json BENCH_steady.json
	@echo wrote BENCH_steady.json

# Online-serving throughput benchmark: intents/sec and placement-latency
# percentiles per shard count, with the sequential replay checked
# bit-identical against the in-process oracle. CI uploads BENCH_serve.json.
bench-serve:
	$(GO) run ./cmd/pythia-serve -bench -json BENCH_serve.json
	@echo wrote BENCH_serve.json

# Crash-recovery benchmark: journal a trace, kill the batch loop, and
# measure snapshot-load + journal-replay time at several snapshot cadences,
# with the recovered digest checked bit-identical against the oracle. CI
# uploads BENCH_recovery.json.
bench-recovery:
	$(GO) run ./cmd/pythia-serve -bench-recovery -json BENCH_recovery.json
	@echo wrote BENCH_recovery.json

# Diff the current tree's scale benchmark against a saved artifact:
#   make bench-scale && git stash / checkout, make bench-compare OLD=path.json
OLD ?= BENCH_scale_old.json
bench-compare:
	$(GO) test -bench=ScaleFatTree -benchmem -benchtime=1x -run='^$$' . \
		| $(GO) run ./cmd/bench2json -o BENCH_scale.json
	$(GO) run ./cmd/bench2json -compare $(OLD) BENCH_scale.json

# Capture CPU + allocation profiles of the full experiment sweep (serial, so
# the call tree attributes to one trial at a time). Inspect with
#   go tool pprof out/cpu.pprof    /    go tool pprof out/mem.pprof
PROFILE_EXPERIMENT ?= all
profile:
	mkdir -p out
	$(GO) run ./cmd/pythia-bench -experiment $(PROFILE_EXPERIMENT) -parallel 1 \
		-cpuprofile out/cpu.pprof -memprofile out/mem.pprof > out/profile.txt
	@echo wrote out/cpu.pprof out/mem.pprof "(log: out/profile.txt)"

# Quick fuzz pass over the binary index-file codec.
fuzz:
	$(GO) test ./internal/instrument/ -fuzz FuzzDecodeIndex -fuzztime 10s
	$(GO) test ./internal/instrument/ -fuzz FuzzBuildIndex -fuzztime 10s
	$(GO) test ./internal/instrument/ -fuzz FuzzDecodeIFile -fuzztime 10s
	$(GO) test ./internal/ofp10/ -fuzz FuzzParse -fuzztime 10s

# Regenerate every table/figure (quick scale) and the SVG charts.
figures:
	mkdir -p out
	$(GO) run ./cmd/pythia-bench -svgdir out -json out/results.json | tee out/experiments.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/skewedjob
	$(GO) run ./examples/nutchsweep
	$(GO) run ./examples/faulttolerance
	$(GO) run ./examples/multijob
	$(GO) run ./examples/observability

# Operations-plane smoke: boot an instrumented server, drive real ingest,
# lint the /metrics exposition, and write the scrape. CI uploads
# METRICS_serve.prom.
scrape-smoke:
	$(GO) run ./cmd/pythia-serve -scrape-smoke -prom-out METRICS_serve.prom

# Regenerate the committed facade API-surface report (review the diff!).
api:
	$(GO) run ./cmd/apireport > api.txt

# Fail if the facade's exported surface drifted from api.txt.
api-check:
	$(GO) run ./cmd/apireport -check api.txt

clean:
	rm -rf out
