// Multijob runs concurrent and chained MapReduce jobs on one Pythia-managed
// cluster. The collector ingests shuffle-intent events "on a per job basis"
// (§III) — each job's predictions, reducer locations and booked demand are
// tracked independently, so co-scheduled analytics pipelines (the normal
// state of a production Hadoop cluster) share the fabric gracefully.
package main

import (
	"fmt"

	"pythia"
)

func main() {
	// Two jobs co-scheduled on the same oversubscribed cluster: a
	// network-hungry sort and a CPU-hungry indexing job.
	cl := pythia.New(
		pythia.WithScheduler(pythia.SchedulerPythia),
		pythia.WithOversubscription(10),
		pythia.WithSeed(11),
	)
	results := cl.RunJobs(
		pythia.SortJob(8*pythia.GB, 8, 11),
		pythia.NutchJob(2*pythia.GB, 8, 12),
	)
	fmt.Println("concurrent jobs under Pythia (1:10 oversubscription):")
	for _, r := range results {
		fmt.Printf("  %-15s %7.1fs (%.1f GB shuffled)\n", r.Name, r.DurationSec, r.ShuffleBytes/1e9)
	}

	// The same pair under ECMP, for contrast.
	base := pythia.New(
		pythia.WithScheduler(pythia.SchedulerECMP),
		pythia.WithOversubscription(10),
		pythia.WithSeed(11),
	)
	baseResults := base.RunJobs(
		pythia.SortJob(8*pythia.GB, 8, 11),
		pythia.NutchJob(2*pythia.GB, 8, 12),
	)
	fmt.Println("same pair under ECMP:")
	for i, r := range baseResults {
		speedup := (r.DurationSec - results[i].DurationSec) / results[i].DurationSec
		fmt.Printf("  %-15s %7.1fs (Pythia was %.1f%% faster)\n", r.Name, r.DurationSec, speedup*100)
	}

	// A chained pipeline (each stage consumes the previous stage's
	// output): three iterations of a PageRank-shaped job, run back to
	// back on a fresh Pythia cluster.
	pipe := pythia.New(
		pythia.WithScheduler(pythia.SchedulerPythia),
		pythia.WithOversubscription(10),
		pythia.WithSeed(13),
	)
	fmt.Println("chained pipeline (3 PageRank-shaped iterations):")
	total := 0.0
	for iter := 0; iter < 3; iter++ {
		spec := pythia.CustomJob(pythia.WorkloadConfig{
			Name:         fmt.Sprintf("pagerank-iter%d", iter),
			InputBytes:   4 * pythia.GB,
			NumReduces:   8,
			OutputRatio:  1.0, // rank vector exchanged each iteration
			SkewExponent: 1.0, // power-law in-degree
			Seed:         uint64(100 + iter),
		})
		r := pipe.RunJob(spec)
		total += r.DurationSec
		fmt.Printf("  %-16s %7.1fs\n", r.Name, r.DurationSec)
	}
	fmt.Printf("pipeline total: %.1fs\n", total)
}
