// Observability demonstrates the measurement tooling around the simulator,
// entirely through the facade: it runs one sort job under Pythia at 1:10
// oversubscription while sampling per-trunk utilization (NetFlow-style link
// probes), then writes three artifacts into ./out/: the ASCII sequence
// diagram, a Chrome trace-event JSON (open in chrome://tracing or
// Perfetto), and per-trunk utilization CSVs showing how Pythia's placement
// keeps both trunks' shuffle shares within their spare capacities.
package main

import (
	"fmt"
	"os"
	"strings"

	"pythia"
)

func main() {
	// 1:10 oversubscription with the paper's asymmetric 30/70 spare split.
	cl := pythia.New(
		pythia.WithScheduler(pythia.SchedulerPythia),
		pythia.WithOversubscription(10),
		pythia.WithSequenceRecording(),
	)
	trunks := cl.Trunks()
	probe := cl.Probe(0.5, trunks...)

	res := cl.RunJob(pythia.SortJob(8*pythia.GB, 8, 3))
	fmt.Printf("sort finished in %.1fs under Pythia\n\n", res.DurationSec)
	fmt.Println(cl.SequenceDiagram(96))

	if err := os.MkdirAll("out", 0o755); err != nil {
		panic(err)
	}
	must := func(name string, data []byte) {
		if err := os.WriteFile("out/"+name, data, 0o644); err != nil {
			panic(err)
		}
		fmt.Printf("wrote out/%s\n", name)
	}
	must("seqdiag.svg", []byte(cl.SequenceDiagramSVG()))
	chrome, err := cl.ChromeTrace()
	if err != nil {
		panic(err)
	}
	must("job.trace.json", chrome)

	for i, tr := range trunks {
		var b strings.Builder
		b.WriteString("t_sec,utilization,shuffle_mbps\n")
		for _, s := range probe.Series(tr) {
			fmt.Fprintf(&b, "%.1f,%.3f,%.1f\n", s.TSec, s.Utilization, s.ShuffleBps/1e6)
		}
		must(fmt.Sprintf("trunk%d.csv", i), []byte(b.String()))
		fmt.Printf("%s: mean utilization %.0f%%, peak shuffle %.0f Mbps, carried %.2f GB\n",
			cl.LinkName(tr), probe.MeanUtilization(tr)*100, probe.PeakShuffleBps(tr)/1e6,
			cl.LinkCarriedGB(tr))
	}
}
