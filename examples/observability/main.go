// Observability demonstrates the cross-plane flight recorder, entirely
// through the facade: it runs one skewed sort job under Pythia at 1:10
// oversubscription with the recorder on, prints the per-job lifecycle digest
// (the critical path of the job's worst aggregate — spill detection to flow
// completion) and the prediction-quality scores, then writes three artifacts
// into ./out/: the raw JSONL event log, a Prometheus text snapshot of the
// derived metrics, and a merged Chrome/Perfetto trace combining fabric task
// spans with the control-plane flight lanes.
package main

import (
	"fmt"
	"os"

	"pythia"
)

func main() {
	// A skewed job keeps one aggregate hot — that aggregate's lifecycle is
	// the one the summary's critical path tells the story of.
	cl := pythia.New(
		pythia.WithScheduler(pythia.SchedulerPythia),
		pythia.WithOversubscription(10),
		pythia.WithSequenceRecording(),
		pythia.WithFlightRecorder(),
	)
	res := cl.RunJob(pythia.SortJob(8*pythia.GB, 8, 3))
	fmt.Printf("sort finished in %.1fs under Pythia, %d flight events recorded\n\n",
		res.DurationSec, cl.FlightEventCount())

	// Per-job digest: event volumes, per-plane latencies, and the critical
	// path of the worst (largest) aggregate.
	fmt.Print(cl.FlightSummary())

	// Prediction quality: did the rules beat the flows onto the fabric?
	q := cl.PredictionQuality()
	fmt.Printf("\nprediction lead time p50/p95/max: %.3f/%.3f/%.3f s\n",
		q.LeadP50Sec, q.LeadP95Sec, q.LeadMaxSec)
	fmt.Printf("late predictions: %.1f%% of %d covered flows\n",
		q.LateFraction*100, q.CoveredFlows)
	fmt.Printf("predicted-vs-actual byte error: %.2f%% mean\n", q.ByteErrMeanAbsFrac*100)

	if err := os.MkdirAll("out", 0o755); err != nil {
		panic(err)
	}
	must := func(name string, data []byte) {
		if err := os.WriteFile("out/"+name, data, 0o644); err != nil {
			panic(err)
		}
		fmt.Printf("wrote out/%s\n", name)
	}
	// Raw event log: one JSON object per line, byte-identical across
	// same-seed runs.
	must("flight.jsonl", cl.FlightJSONL())
	// Derived metrics in Prometheus text exposition format.
	must("metrics.prom", []byte(cl.PrometheusSnapshot()))
	// Fabric spans (pid 0) + control-plane lanes (pid 1) in one trace; open
	// in chrome://tracing or Perfetto.
	merged, err := cl.MergedChromeTrace()
	if err != nil {
		panic(err)
	}
	must("merged.trace.json", merged)
}
