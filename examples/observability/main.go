// Observability demonstrates the measurement tooling around the simulator:
// it runs one sort job under Pythia at 1:10 oversubscription while sampling
// per-trunk utilization (NetFlow-style link probes), then writes three
// artifacts into ./out/: the ASCII sequence diagram, a Chrome trace-event
// JSON (open in chrome://tracing or Perfetto), and per-trunk utilization
// CSVs showing how Pythia's placement keeps both trunks' shuffle shares
// within their spare capacities.
package main

import (
	"fmt"
	"os"
	"strings"

	"pythia/internal/core"
	"pythia/internal/hadoop"
	"pythia/internal/instrument"
	"pythia/internal/netflow"
	"pythia/internal/netsim"
	"pythia/internal/openflow"
	"pythia/internal/sim"
	"pythia/internal/topology"
	"pythia/internal/trace"
	"pythia/internal/workload"
)

func main() {
	eng := sim.NewEngine()
	g, hosts, trunks := topology.TwoRack(5, 2, topology.Gbps)
	net := netsim.New(eng, g)

	// 1:10 oversubscription, asymmetric (30/70 spare split).
	for i, spare := range []float64{0.15, 0.35} { // of 0.5 Gbps total spare
		load := topology.Gbps - spare*1e9
		net.SetBackground(trunks[i], load)
		if r, ok := g.Reverse(trunks[i]); ok {
			net.SetBackground(r, load)
		}
	}

	ofc := openflow.NewController(eng, net, 0)
	py := core.New(eng, net, ofc, core.Config{}.EnableAggregation())
	cluster := hadoop.NewCluster(eng, net, hosts, ofc, hadoop.Config{})
	instrument.Attach(eng, cluster, py, instrument.Config{})
	rec := trace.Attach(eng, cluster)

	var probeLinks []topology.LinkID
	for _, tr := range trunks {
		probeLinks = append(probeLinks, tr)
		if r, ok := g.Reverse(tr); ok {
			probeLinks = append(probeLinks, r)
		}
	}
	probe := netflow.NewLinkProbe(eng, net, probeLinks, 0.5)

	job, err := cluster.Submit(workload.Sort(8*workload.GB, 8, 3))
	if err != nil {
		panic(err)
	}
	eng.Run()
	fmt.Printf("sort finished in %.1fs under Pythia\n\n", float64(job.Duration()))
	fmt.Println(rec.Render(96))

	if err := os.MkdirAll("out", 0o755); err != nil {
		panic(err)
	}
	must := func(name string, data []byte) {
		if err := os.WriteFile("out/"+name, data, 0o644); err != nil {
			panic(err)
		}
		fmt.Printf("wrote out/%s\n", name)
	}
	must("seqdiag.svg", []byte(rec.RenderSVG()))
	chrome, err := rec.ChromeTrace()
	if err != nil {
		panic(err)
	}
	must("job.trace.json", chrome)

	for i, tr := range trunks {
		var b strings.Builder
		b.WriteString("t_sec,utilization,shuffle_mbps\n")
		for _, s := range probe.Series(tr) {
			fmt.Fprintf(&b, "%.1f,%.3f,%.1f\n", float64(s.T), s.Utilization, s.ShuffleBps/1e6)
		}
		must(fmt.Sprintf("trunk%d.csv", i), []byte(b.String()))
		fmt.Printf("trunk%d: mean utilization %.0f%%, peak shuffle %.0f Mbps\n",
			i, probe.MeanUtilization(tr)*100, probe.PeakShuffleBps(tr)/1e6)
	}
}
