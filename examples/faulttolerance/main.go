// Faulttolerance exercises the §IV fault-tolerance path: Pythia recomputes
// its routing graph from topology-update events and re-places booked
// aggregates when an inter-rack trunk fails mid-job. The job must finish on
// the surviving trunk with all shuffle flows rerouted.
//
// This example uses the internal packages directly (examples live inside
// the module), showing how the layers compose when the facade is too
// coarse.
package main

import (
	"fmt"

	"pythia/internal/core"
	"pythia/internal/hadoop"
	"pythia/internal/instrument"
	"pythia/internal/netsim"
	"pythia/internal/openflow"
	"pythia/internal/sim"
	"pythia/internal/topology"
	"pythia/internal/workload"
)

func main() {
	eng := sim.NewEngine()
	g, hosts, trunks := topology.TwoRack(5, 2, topology.Gbps)
	net := netsim.New(eng, g)
	ofc := openflow.NewController(eng, net, 0)
	py := core.New(eng, net, ofc, core.Config{}.EnableAggregation())
	cluster := hadoop.NewCluster(eng, net, hosts, ofc, hadoop.Config{})
	instrument.Attach(eng, cluster, py, instrument.Config{})

	spec := workload.Sort(8*workload.GB, 8, 5)
	job, err := cluster.Submit(spec)
	if err != nil {
		panic(err)
	}

	// Fail trunk0 (both directions) 20 simulated seconds in.
	eng.At(20, func() {
		fmt.Printf("t=%.1fs: failing trunk0\n", float64(eng.Now()))
		ofc.FailLink(trunks[0])
		if rev, ok := g.Reverse(trunks[0]); ok {
			g.SetLinkUp(rev, false)
		}
	})

	eng.Run()
	if !job.Done {
		panic("job did not survive the trunk failure")
	}
	fmt.Printf("job finished in %.1fs despite losing half the inter-rack capacity\n",
		float64(job.Duration()))
	fmt.Printf("trunk0 carried %.2f GB, trunk1 carried %.2f GB of shuffle data\n",
		linkGB(net, g, trunks[0]), linkGB(net, g, trunks[1]))
	fmt.Printf("pythia re-placements after topology change: %d\n", py.Reallocations)
}

func linkGB(net *netsim.Network, g *topology.Graph, l topology.LinkID) float64 {
	bits := net.LinkBits(l)
	if rev, ok := g.Reverse(l); ok {
		bits += net.LinkBits(rev)
	}
	return bits / 8 / 1e9
}
