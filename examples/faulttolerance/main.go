// Faulttolerance exercises the §IV fault-tolerance story end to end through
// the facade's failure plane — no internal packages required. Three
// scenarios:
//
//  1. An inter-rack trunk fails mid-shuffle and later recovers; Pythia
//     re-places booked aggregates off the dead trunk and spreads back when
//     it returns.
//  2. A spine switch dies on a leaf-spine fabric, downing every attached
//     cable at once; the job finishes on the surviving spine.
//  3. The SDN controller itself loses management connectivity: rule
//     installs time out, retry with exponential backoff, and past the
//     budget Pythia degrades affected aggregates to the default ECMP
//     pipeline, reconciling once the controller returns.
package main

import (
	"fmt"

	"pythia"
)

func main() {
	trunkFailure()
	switchFailure()
	controllerOutage()
}

// trunkFailure: lose half the inter-rack capacity at t=20s, get it back at
// t=60s.
func trunkFailure() {
	fmt.Println("=== trunk failure + recovery (two-rack, Pythia) ===")
	cl := pythia.New(pythia.WithScheduler(pythia.SchedulerPythia))
	trunks := cl.Trunks()
	cl.At(20, func() {
		fmt.Printf("t=%.1fs: failing %s\n", cl.Now(), cl.LinkName(trunks[0]))
		cl.FailLink(trunks[0])
	})
	cl.At(60, func() {
		fmt.Printf("t=%.1fs: recovering %s\n", cl.Now(), cl.LinkName(trunks[0]))
		cl.RecoverLink(trunks[0])
	})
	res := cl.RunJob(pythia.SortJob(8*pythia.GB, 8, 5))
	fmt.Printf("job finished in %.1fs despite the outage\n", res.DurationSec)
	for _, tr := range trunks {
		fmt.Printf("%s carried %.2f GB of shuffle data\n", cl.LinkName(tr), cl.LinkCarriedGB(tr))
	}
	fmt.Printf("in-flight flows rescued off dead paths: %d\n\n", cl.Faults().FlowsRescued)
}

// switchFailure: a whole spine dies, taking all its cables with it.
func switchFailure() {
	fmt.Println("=== spine-switch failure (leaf-spine, Pythia) ===")
	cl := pythia.New(
		pythia.WithScheduler(pythia.SchedulerPythia),
		pythia.WithTopology(pythia.LeafSpineTopology(2, 2, 5)),
	)
	var spine pythia.SwitchID = -1
	for _, sw := range cl.Switches() {
		if sw.Rack < 0 { // spines serve no rack
			spine = sw.ID
			break
		}
	}
	cl.At(15, func() {
		fmt.Printf("t=%.1fs: failing %s (all its cables go down)\n", cl.Now(), cl.SwitchName(spine))
		cl.FailSwitch(spine)
	})
	cl.At(45, func() {
		fmt.Printf("t=%.1fs: recovering %s\n", cl.Now(), cl.SwitchName(spine))
		cl.RecoverSwitch(spine)
	})
	res := cl.RunJob(pythia.SortJob(8*pythia.GB, 8, 5))
	fmt.Printf("job finished in %.1fs on the surviving spine\n\n", res.DurationSec)
}

// controllerOutage: the control plane goes dark mid-job; rule installs
// retry, fail, and Pythia falls back to the ECMP pipeline until recovery.
func controllerOutage() {
	fmt.Println("=== controller outage with retry/backoff (two-rack, Pythia) ===")
	cl := pythia.New(
		pythia.WithScheduler(pythia.SchedulerPythia),
		pythia.WithOversubscription(10),
		pythia.WithControlPlaneFaults(pythia.ControlPlaneFaults{
			InstallTimeoutSec: 0.05,
			MaxRetries:        3,
			RetryBackoffSec:   0.1,
		}),
	)
	cl.At(2, func() {
		fmt.Printf("t=%.1fs: controller loses management connectivity\n", cl.Now())
		cl.FailController()
	})
	cl.At(40, func() {
		fmt.Printf("t=%.1fs: controller back; reconciling degraded aggregates\n", cl.Now())
		cl.RecoverController()
	})
	res := cl.RunJob(pythia.SortJob(8*pythia.GB, 8, 5))
	f := cl.Faults()
	fmt.Printf("job finished in %.1fs through the outage\n", res.DurationSec)
	fmt.Printf("flow-mods dropped %d, retransmissions %d\n", f.DroppedFlowMods, f.Retransmissions)
	fmt.Printf("aggregates degraded to ECMP %d, reconciled after recovery %d\n",
		f.AggregatesDegraded, f.Reconciliations)
}
