// Skewedjob reproduces the paper's Fig. 1a motivation: a toy sort whose
// reducer-0 fetches 5x the data of reducer-1 (MapReduce job skew), rendered
// as a sequence diagram so the long shuffle phase and the imbalance are
// visible. It then shows what the skew costs under constrained trunks and
// how Pythia's bandwidth-proportional placement helps.
package main

import (
	"fmt"

	"pythia"
)

func main() {
	// Fig. 1a: non-blocking network, ECMP — observe the phases.
	cl := pythia.New(
		pythia.WithScheduler(pythia.SchedulerECMP),
		pythia.WithSequenceRecording(),
		pythia.WithSeed(1),
	)
	res := cl.RunJob(pythia.ToySortJob())
	fmt.Println(cl.SequenceDiagram(96))
	fmt.Printf("non-blocking network: %.1fs total; shuffle runs %.1fs → %.1fs of it\n\n",
		res.DurationSec, res.MapPhaseSec, res.ShuffleSec)

	// The same skewed pattern at scale, under oversubscription: the
	// skewed reducer's flows gate the barrier, so path choice matters.
	skewed := pythia.CustomJob(pythia.WorkloadConfig{
		Name:         "skewed-sort",
		InputBytes:   8 * pythia.GB,
		NumReduces:   8,
		SkewExponent: 1.0, // heavy: top reducer gets ~3x the median
		Seed:         7,
	})
	for _, oversub := range []int{5, 10, 20} {
		e, p, s := pythia.Compare(skewed, pythia.SchedulerECMP, pythia.SchedulerPythia,
			pythia.WithOversubscription(oversub), pythia.WithSeed(7))
		fmt.Printf("oversub 1:%-3d  ECMP %6.1fs  Pythia %6.1fs  speedup %5.1f%%\n",
			oversub, e, p, s*100)
	}
}
