// Quickstart: run one sort job on the paper's two-rack testbed under ECMP
// and under Pythia at 1:10 oversubscription, and print the speedup — the
// smallest end-to-end use of the public API.
package main

import (
	"fmt"

	"pythia"
)

func main() {
	// A 24 GB HiBench-style sort with 10 reducers (the paper ran 240 GB).
	spec := pythia.SortJob(24*pythia.GB, 10, 42)

	fmt.Printf("workload: %s, %d maps, %d reducers, %.1f GB shuffled\n",
		spec.Name, spec.NumMaps, spec.NumReduces, spec.TotalShuffleBytes()/1e9)

	ecmpSec, pythiaSec, speedup := pythia.Compare(
		spec, pythia.SchedulerECMP, pythia.SchedulerPythia,
		// oversubscription 1:10, emulated with background CBR traffic
		pythia.WithOversubscription(10),
		pythia.WithSeed(42),
	)

	fmt.Printf("ECMP:   %6.1f s\n", ecmpSec)
	fmt.Printf("Pythia: %6.1f s\n", pythiaSec)
	fmt.Printf("speedup: %.1f%% (the paper reports 3–46%% depending on ratio and workload)\n",
		speedup*100)
}
