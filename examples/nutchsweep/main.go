// Nutchsweep regenerates the shape of the paper's Figure 3 from the public
// API: Nutch-indexing completion times under ECMP and Pythia across
// oversubscription ratios. The headline behaviours to look for: Pythia's
// completion time stays near the no-oversubscription time (the paper's
// 242 s), while ECMP degrades — up to the paper's 46% relative speedup.
package main

import (
	"fmt"

	"pythia"
)

func main() {
	// The paper's published Nutch input: 5M pages, 8 GB.
	spec := pythia.NutchJob(8*pythia.GB, 12, 17)
	fmt.Printf("nutch indexing: %d maps, %d reducers, %.1f GB intermediate data\n\n",
		spec.NumMaps, spec.NumReduces, spec.TotalShuffleBytes()/1e9)

	fmt.Printf("%-8s %10s %12s %10s\n", "oversub", "ECMP (s)", "Pythia (s)", "speedup")
	for _, oversub := range []int{0, 2, 5, 10, 20} {
		e, p, s := pythia.Compare(spec, pythia.SchedulerECMP, pythia.SchedulerPythia,
			pythia.WithOversubscription(oversub), pythia.WithSeed(17))
		label := "none"
		if oversub > 0 {
			label = fmt.Sprintf("1:%d", oversub)
		}
		fmt.Printf("%-8s %10.1f %12.1f %9.1f%%\n", label, e, p, s*100)
	}
}
