package pythia_test

import (
	"fmt"
	"strings"

	"pythia"
)

// The smallest end-to-end use: run the paper's Fig. 1a toy job and inspect
// its phases. All simulations are deterministic per seed, so the output is
// exact.
func Example() {
	cl := pythia.New(pythia.WithSeed(1))
	res := cl.RunJob(pythia.ToySortJob())
	fmt.Printf("%s: maps done at %.1fs, shuffle barrier at %.1fs\n",
		res.Name, res.MapPhaseSec, res.ShuffleSec)
	// Output:
	// toy-sort: maps done at 22.0s, shuffle barrier at 25.8s
}

// Comparing schedulers on identical conditions is one call.
func ExampleCompare() {
	spec := pythia.ToySortJob()
	ecmpSec, pythiaSec, _ := pythia.Compare(
		spec, pythia.SchedulerECMP, pythia.SchedulerPythia, pythia.WithSeed(1))
	// On an uncontended network the toy job ties.
	fmt.Printf("tie: %v\n", ecmpSec == pythiaSec)
	// Output:
	// tie: true
}

// Sequence recording reproduces the paper's Fig. 1a visualization.
func ExampleCluster_SequenceDiagram() {
	cl := pythia.New(pythia.WithSequenceRecording(), pythia.WithSeed(1))
	cl.RunJob(pythia.ToySortJob())
	diagram := cl.SequenceDiagram(80)
	// The skew annotation shows reducer-0's 5x share.
	for _, line := range strings.Split(diagram, "\n") {
		if strings.HasPrefix(line, "reducer-") {
			fmt.Println(line)
		}
	}
	// Output:
	// reducer-0 fetched 522.5 MB
	// reducer-1 fetched 104.5 MB
}

// Workload generators produce the paper's benchmark shapes at any scale.
func ExampleSortJob() {
	spec := pythia.SortJob(24*pythia.GB, 10, 42)
	fmt.Printf("%s: %d maps, %d reducers, %.0f GB intermediate data\n",
		spec.Name, spec.NumMaps, spec.NumReduces, spec.TotalShuffleBytes()/1e9)
	// Output:
	// sort: 94 maps, 10 reducers, 24 GB intermediate data
}
