package pythia

import (
	"math"
	"strings"
	"testing"

	"pythia/internal/bench"
)

// Repo-level integration tests: cross-system invariants exercised through
// the public facade and the experiment harness, combining features that the
// per-package tests cover in isolation.

// TestConservationAcrossSchedulers: whatever the scheduler, the reducers
// collectively fetch exactly the spec's shuffle volume.
func TestConservationAcrossSchedulers(t *testing.T) {
	spec := NutchJob(2*GB, 8, 5)
	want := spec.TotalShuffleBytes()
	for _, k := range []SchedulerKind{SchedulerECMP, SchedulerPythia, SchedulerHedera} {
		cl := New(WithScheduler(k), WithOversubscription(10), WithSeed(5))
		res := cl.RunJob(spec)
		if math.Abs(res.ShuffleBytes-want) > 1 {
			t.Fatalf("%v: shuffle bytes %v, want %v", k, res.ShuffleBytes, want)
		}
	}
}

// TestKitchenSink: every optional subsystem at once — Pythia with rack
// aggregation and criticality, HDFS write-back, speculative-capable
// runtime, sequence recording — on an oversubscribed fabric.
func TestKitchenSink(t *testing.T) {
	spec := CustomJob(WorkloadConfig{
		Name:         "kitchen-sink",
		InputBytes:   2 * GB,
		NumReduces:   8,
		SkewExponent: 0.8,
		Seed:         9,
	})
	spec.ReduceOutputRatio = 1.0
	cl := New(
		WithScheduler(SchedulerPythia),
		WithRackAggregation(),
		WithCriticality(),
		WithHDFS(),
		WithSequenceRecording(),
		WithOversubscription(10),
		WithSeed(9),
	)
	res := cl.RunJob(spec)
	if res.DurationSec <= 0 {
		t.Fatal("job failed")
	}
	if got := cl.HDFSBytesWritten(); math.Abs(got-3*2*GB) > GB*0.01 {
		t.Fatalf("HDFS bytes = %v, want ~6 GB (3 replicas)", got)
	}
	if !strings.Contains(cl.SequenceDiagram(100), "kitchen-sink") {
		t.Fatal("diagram missing")
	}
	if tr, err := cl.ChromeTrace(); err != nil || len(tr) == 0 {
		t.Fatalf("chrome trace: %v", err)
	}
	rep := cl.Overhead()
	if rep.Spills != spec.NumMaps {
		t.Fatalf("spills = %d, want %d", rep.Spills, spec.NumMaps)
	}
}

// TestSpeedupMonotoneInOversubscription: through the facade, the
// Pythia-over-ECMP advantage must not shrink as the network tightens.
func TestSpeedupMonotoneInOversubscription(t *testing.T) {
	spec := SortJob(8*GB, 8, 7)
	prev := -1.0
	for _, n := range []int{0, 5, 20} {
		_, _, speedup := Compare(spec, SchedulerECMP, SchedulerPythia, WithOversubscription(n), WithSeed(7))
		if speedup < prev-0.05 {
			t.Fatalf("speedup shrank at 1:%d: %.2f after %.2f", n, speedup, prev)
		}
		prev = speedup
	}
	if prev < 0.2 {
		t.Fatalf("1:20 speedup only %.1f%%", prev*100)
	}
}

// TestHeadlineNumbersStable: the calibrated headline results (EXPERIMENTS.md)
// must hold within tolerance — a regression gate for the reproduction.
func TestHeadlineNumbersStable(t *testing.T) {
	if testing.Short() {
		t.Skip("headline sweep in -short mode")
	}
	scale := bench.QuickScale()

	fig3 := bench.RunFig3(scale)
	last := fig3[len(fig3)-1]
	if last.Speedup < 0.35 || last.Speedup > 0.55 {
		t.Errorf("Fig3 1:20 speedup = %.1f%%, calibrated ~46%%", last.Speedup*100)
	}
	flatness := last.PythiaSec / fig3[0].PythiaSec
	if flatness > 1.15 {
		t.Errorf("Nutch Pythia curve not flat: %.2fx", flatness)
	}

	fig4 := bench.RunFig4(scale)
	l4 := fig4[len(fig4)-1]
	if l4.Speedup < 0.35 || l4.Speedup > 0.70 {
		t.Errorf("Fig4 1:20 speedup = %.1f%%, calibrated ~55%%", l4.Speedup*100)
	}

	fig5 := bench.RunFig5(scale)
	if fig5.MinLeadSec <= 0 {
		t.Error("prediction not ahead of traffic")
	}
	if fig5.MeanOverestimate < 0.03 || fig5.MeanOverestimate > 0.07 {
		t.Errorf("overestimate %.1f%% outside the paper's 3-7%% band", fig5.MeanOverestimate*100)
	}

	oh := bench.RunOverhead(scale)
	if oh.MeanCPUFraction < 0.02 || oh.MeanCPUFraction > 0.05 {
		t.Errorf("overhead %.1f%% outside the paper's 2-5%% band", oh.MeanCPUFraction*100)
	}
}

// TestWordCountControl: the aggregation-heavy workload barely shuffles, so
// schedulers must tie — a negative control for the whole pipeline.
func TestWordCountControl(t *testing.T) {
	spec := WordCountJob(4*GB, 8, 3)
	e, p, speedup := Compare(spec, SchedulerECMP, SchedulerPythia, WithOversubscription(20), WithSeed(3))
	if math.Abs(speedup) > 0.05 {
		t.Fatalf("wordcount speedup %.1f%% (ecmp %.1fs pythia %.1fs); network scheduling should not matter", speedup*100, e, p)
	}
}

// TestIncastTuning: with the incast model on, Hadoop's ParallelCopies knob
// matters — too many concurrent fetches per reducer collapse receiver
// goodput, and throttling them recovers it. This is the tuning guidance the
// paper's TCP-incast citation motivates.
func TestIncastTuning(t *testing.T) {
	run := func(parallelCopies int, incast bool) float64 {
		opts := []Option{
			WithScheduler(SchedulerPythia),
			WithSeed(8),
			WithParallelCopies(parallelCopies),
		}
		if incast {
			opts = append(opts, WithIncast(4, 0.12, 0.25))
		}
		cl := New(opts...)
		return cl.RunJob(SortJob(4*GB, 8, 8)).DurationSec
	}
	noIncast := run(10, false)
	aggressive := run(10, true)
	throttled := run(2, true)
	if aggressive <= noIncast {
		t.Fatalf("incast model had no effect: %.1fs vs %.1fs", aggressive, noIncast)
	}
	if throttled >= aggressive {
		t.Fatalf("throttling parallel copies did not mitigate incast: %.1fs vs %.1fs",
			throttled, aggressive)
	}
}
